"""Integration tests for the job driver (simulate_job)."""

from __future__ import annotations

import math

import pytest

from repro.core.characterization import RunKey
from repro.mapreduce.config import DEFAULT_CONF
from repro.mapreduce.driver import simulate_job

GB = 1024 ** 3
MB = 1024 * 1024


class TestBasics:
    def test_result_fields(self, wc_results):
        r = wc_results["xeon"]
        assert r.workload == "wordcount"
        assert r.machine == "xeon"
        assert r.n_nodes == 3
        assert r.execution_time_s > 0
        assert r.dynamic_energy_j > 0
        assert 0 < r.ipc < 4

    def test_phase_times_cover_run(self, wc_results):
        r = wc_results["xeon"]
        total = sum(r.phase_seconds.values())
        assert total == pytest.approx(r.execution_time_s, rel=1e-6)
        assert r.phase_time("map") > 0
        assert r.phase_time("reduce") > 0
        assert r.phase_time("other") > 0

    def test_phase_fractions_sum_to_one(self, wc_results):
        r = wc_results["atom"]
        total = sum(r.phase_fraction(p) for p in ("map", "reduce", "other"))
        assert total == pytest.approx(1.0, rel=1e-6)

    def test_map_task_count_law(self, characterizer):
        """num map tasks == ceil(input / block size) (§3.1.1)."""
        r = characterizer.run(RunKey("xeon", "wordcount",
                                     block_size_mb=128.0,
                                     data_per_node_gb=1.0))
        expected = math.ceil(3 * GB / (128 * MB))
        assert r.counters.map_tasks == expected

    def test_determinism(self):
        a = simulate_job("atom", "grep", data_per_node_gb=0.5)
        b = simulate_job("atom", "grep", data_per_node_gb=0.5)
        assert a.execution_time_s == b.execution_time_s
        assert a.dynamic_energy_j == b.dynamic_energy_j

    def test_invalid_workload(self):
        with pytest.raises(KeyError):
            simulate_job("atom", "matrix_multiply")

    def test_invalid_machine(self):
        with pytest.raises(KeyError):
            simulate_job("sparc", "wordcount")

    def test_invalid_data_size(self):
        with pytest.raises(ValueError):
            simulate_job("atom", "wordcount", data_per_node_gb=0.0)


class TestStructure:
    def test_sort_has_no_reduce_phase(self, sort_results):
        """The paper's Sort runs map-only (§3.1.1 note)."""
        for r in sort_results.values():
            assert r.phase_time("reduce") == 0.0
            assert r.counters.reduce_tasks == 0

    def test_grep_runs_two_stages(self, characterizer):
        r = characterizer.run(RunKey("xeon", "grep"))
        assert [s.stage for s in r.stages] == ["search", "sort"]
        assert r.stages[1].input_bytes < r.stages[0].input_bytes

    def test_terasort_sample_stage_is_cheap(self, characterizer):
        r = characterizer.run(RunKey("xeon", "terasort"))
        sample, sort = r.stages
        assert sample.stage == "sample"
        assert sample.total_s < sort.total_s

    def test_energy_phases_match_time_phases(self, wc_results):
        r = wc_results["xeon"]
        for phase in ("map", "reduce"):
            assert r.phase_energy(phase) > 0

    def test_counters_flow(self, wc_results):
        c = wc_results["xeon"].counters
        assert c.input_bytes == pytest.approx(3 * GB, rel=0.01)
        assert 0 < c.map_output_bytes < c.input_bytes  # combiner shrinks
        assert c.shuffle_bytes == pytest.approx(c.map_output_bytes, rel=0.01)
        assert c.spills >= c.map_tasks


class TestConfiguration:
    def test_more_data_takes_longer(self, characterizer):
        small = characterizer.run(RunKey("xeon", "wordcount",
                                         data_per_node_gb=1.0))
        big = characterizer.run(RunKey("xeon", "wordcount",
                                       data_per_node_gb=10.0))
        assert big.execution_time_s > 2 * small.execution_time_s

    def test_fewer_cores_slower(self, characterizer):
        full = characterizer.run(RunKey("atom", "wordcount",
                                        cores_per_node=8,
                                        map_slots_per_node=8,
                                        data_per_node_gb=4.0,
                                        block_size_mb=512.0))
        two = characterizer.run(RunKey("atom", "wordcount",
                                       cores_per_node=2,
                                       map_slots_per_node=2,
                                       data_per_node_gb=4.0,
                                       block_size_mb=512.0))
        assert two.execution_time_s > full.execution_time_s

    def test_higher_frequency_faster(self, characterizer):
        slow = characterizer.run(RunKey("atom", "terasort", freq_ghz=1.2))
        fast = characterizer.run(RunKey("atom", "terasort", freq_ghz=1.8))
        assert fast.execution_time_s < slow.execution_time_s

    def test_single_node_cluster_works(self):
        r = simulate_job("xeon", "wordcount", n_nodes=1,
                         data_per_node_gb=0.5)
        assert r.n_nodes == 1
        assert r.execution_time_s > 0

    def test_custom_conf_threads_through(self):
        conf = DEFAULT_CONF.override(replication=1, heartbeat_s=0.0)
        r = simulate_job("xeon", "sort", conf=conf, data_per_node_gb=0.5)
        base = simulate_job("xeon", "sort", data_per_node_gb=0.5)
        assert r.execution_time_s < base.execution_time_s  # less replication
