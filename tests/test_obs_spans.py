"""Tests for the tracing API: spans, counters, engine instrumentation."""

from __future__ import annotations

import pytest

from repro.mapreduce.driver import simulate_job
from repro.obs import Counter, Tracer
from repro.sim.engine import Interrupt, Simulator


class TestCounter:
    def test_set_and_value(self):
        c = Counter("x")
        c.set(1.0, 3.0)
        c.set(2.0, 5.0)
        assert c.value == 5.0
        assert c.samples == [(1.0, 3.0), (2.0, 5.0)]

    def test_add_steps(self):
        c = Counter("x")
        c.add(0.0, 2.0)
        c.add(1.0, -1.0)
        assert c.samples == [(0.0, 2.0), (1.0, 1.0)]

    def test_same_timestamp_keeps_latest(self):
        c = Counter("x")
        c.set(1.0, 3.0)
        c.set(1.0, 7.0)
        assert c.samples == [(1.0, 7.0)]

    def test_redundant_sample_dropped(self):
        c = Counter("x")
        c.set(1.0, 3.0)
        c.set(2.0, 3.0)
        assert c.samples == [(1.0, 3.0)]
        assert c.value == 3.0

    def test_value_at_and_max_in(self):
        c = Counter("x")
        c.set(1.0, 2.0)
        c.set(3.0, 8.0)
        c.set(5.0, 1.0)
        assert c.value_at(0.5) == 0.0
        assert c.value_at(2.0) == 2.0
        assert c.max_in(0.0, 10.0) == 8.0
        assert c.max_in(4.0, 10.0) == 8.0  # level 8 still holds at t=4


class TestTracer:
    def test_span_lifecycle(self):
        clock = [0.0]
        t = Tracer(clock=lambda: clock[0])
        span = t.begin("work", ("n", "lane"), cat="test", task="t1")
        clock[0] = 5.0
        t.end(span, status="ok")
        assert span.start == 0.0 and span.end == 5.0
        assert span.duration == 5.0
        assert span.args == {"task": "t1", "status": "ok"}
        assert t.open_spans == []

    def test_context_manager(self):
        clock = [1.0]
        t = Tracer(clock=lambda: clock[0])
        with t.span("w", ("a", "b")):
            clock[0] = 2.0
        assert t.spans[0].end == 2.0

    def test_spans_on_filters_by_track(self):
        t = Tracer(clock=lambda: 0.0)
        t.begin("a", ("g1", "l1"))
        t.begin("b", ("g1", "l2"))
        t.begin("c", ("g2", "l1"))
        assert len(t.spans_on("g1")) == 2
        assert len(t.spans_on("g1", "l2")) == 1

    def test_attach_binds_simulated_clock(self):
        sim = Simulator()
        t = Tracer().attach(sim)
        assert sim.obs is t

        def proc():
            yield sim.timeout(4.5)
            t.instant("ping", ("x", "y"))

        sim.process(proc())
        sim.run()
        assert t.events[0].time == 4.5

    def test_meta_counts(self):
        t = Tracer()
        t.count("hits")
        t.count("hits")
        t.count("bytes", 100)
        assert t.meta == {"hits": 2, "bytes": 100}


class TestEngineInstrumentation:
    def test_wake_interrupt_cancel_counted(self):
        sim = Simulator()
        t = Tracer().attach(sim)

        def sleeper():
            try:
                yield sim.timeout(100.0)
            except Interrupt:
                pass

        def killer(victim):
            yield sim.timeout(1.0)
            victim.interrupt("test")
            doomed = sim.timeout(50.0)
            doomed.cancel()

        victim = sim.process(sleeper())
        sim.process(killer(victim))
        sim.run()
        assert t.meta["engine.interrupts"] == 1
        assert t.meta["engine.cancels"] == 1
        assert t.meta["engine.process_wakes"] >= 2
        [ev] = [e for e in t.events if e.name == "interrupt"]
        assert ev.args["cause"] == "test"

    def test_untraced_simulator_records_nothing(self):
        sim = Simulator()
        assert sim.obs is None

        def proc():
            yield sim.timeout(1.0)

        sim.process(proc())
        sim.run()  # no tracer: must simply not crash on any guard


class TestJobTraceCapture:
    def test_job_trace_deposited(self):
        t = Tracer()
        result = simulate_job("atom", "wordcount", data_per_node_gb=0.0625,
                              obs=t)
        job = t.job
        assert job is not None
        assert job.workload == "wordcount" and job.machine == "atom"
        assert job.makespan == result.execution_time_s
        assert sorted(job.node_names) == ["atom0", "atom1", "atom2"]
        assert len(job.intervals) > 0
        assert job.energy.dynamic_joules == result.energy.dynamic_joules
        assert job.engine["events_dispatched"] > 0
        assert t.meta["hdfs.reads"] > 0
        # every attempt span closed, with a status
        slot_spans = [s for s in t.spans if s.track[1].startswith("slot")]
        assert slot_spans and all(s.end is not None for s in slot_spans)
        assert all("status" in s.args for s in slot_spans)

    def test_tracing_does_not_change_scalars(self):
        traced = simulate_job("atom", "wordcount", data_per_node_gb=0.0625,
                              obs=Tracer())
        plain = simulate_job("atom", "wordcount", data_per_node_gb=0.0625)
        assert traced.execution_time_s == plain.execution_time_s
        assert traced.energy.dynamic_joules == plain.energy.dynamic_joules
        assert traced.phase_seconds == plain.phase_seconds
        assert traced.counters.map_attempts == plain.counters.map_attempts

    def test_trace_is_deterministic(self):
        a, b = Tracer(), Tracer()
        simulate_job("atom", "terasort", data_per_node_gb=0.125, obs=a)
        simulate_job("atom", "terasort", data_per_node_gb=0.125, obs=b)
        assert [(s.name, s.track, s.start, s.end) for s in a.spans] == \
               [(s.name, s.track, s.start, s.end) for s in b.spans]
        assert a.meta == b.meta
        assert {k: c.samples for k, c in a.registry.items()} == \
               {k: c.samples for k, c in b.registry.items()}
