"""Tests for the workload registry and Table 2 metadata."""

from __future__ import annotations

import pytest

from repro.arch.cores import CpuProfile
from repro.workloads.base import (MICRO_BENCHMARKS, REAL_WORLD, Category,
                                  JobStage, WorkloadSpec, all_workloads,
                                  register_workload, workload)


class TestRegistry:
    def test_table2_applications_present(self):
        names = set(all_workloads())
        table2 = {"wordcount", "sort", "grep", "terasort",
                  "naive_bayes", "fp_growth"}
        assert table2 <= names
        # Anything beyond Table 2 must be a declared extension.
        from repro.workloads.base import EXTENSIONS
        assert names - table2 == set(EXTENSIONS)

    def test_groups(self):
        assert set(MICRO_BENCHMARKS) == {"wordcount", "sort", "grep",
                                         "terasort"}
        assert set(REAL_WORLD) == {"naive_bayes", "fp_growth"}

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            workload("bitcoin_miner")

    def test_conflicting_registration_rejected(self):
        spec = workload("wordcount")
        changed = WorkloadSpec(
            name="wordcount", full_name="other", domain=spec.domain,
            data_source=spec.data_source, category=spec.category,
            stages=spec.stages)
        with pytest.raises(ValueError):
            register_workload(changed)

    def test_reregistration_of_same_spec_ok(self):
        spec = workload("sort")
        assert register_workload(spec) is spec


class TestTable2Classification:
    """The paper's application classes (Table 2 / §3.5)."""

    def test_wordcount_is_compute(self):
        assert workload("wordcount").category == Category.COMPUTE

    def test_sort_is_io(self):
        assert workload("sort").category == Category.IO

    def test_grep_and_terasort_hybrid(self):
        assert workload("grep").category == Category.HYBRID
        assert workload("terasort").category == Category.HYBRID

    def test_real_world_compute(self):
        assert workload("naive_bayes").category == Category.COMPUTE
        assert workload("fp_growth").category == Category.COMPUTE

    def test_domains(self):
        assert workload("fp_growth").domain == "Association Rule Mining"
        assert workload("naive_bayes").domain == "Classification"


class TestStageStructure:
    def test_sort_is_map_only(self):
        assert not workload("sort").has_reduce

    def test_grep_chains_two_stages(self):
        grep = workload("grep")
        assert [s.name for s in grep.stages] == ["search", "sort"]
        assert grep.stages[1].input_source == "previous"

    def test_terasort_samples_original(self):
        ts = workload("terasort")
        assert ts.stages[0].input_fraction < 1.0
        assert ts.stages[1].input_source == "original"
        assert ts.stages[1].output_replication == 1

    def test_stage_lookup(self):
        assert workload("grep").stage("search").map_ipb > 0
        with pytest.raises(KeyError):
            workload("grep").stage("ghost")


class TestValidation:
    def _profile(self):
        return CpuProfile.characterized("p", ilp=1.5, apki=400,
                                        l1_miss_ratio=0.1,
                                        locality_alpha=0.5)

    def _stage(self, **overrides):
        params = dict(name="s", map_ipb=10.0, map_profile=self._profile(),
                      map_output_ratio=1.0, reduces_per_node=0.0)
        params.update(overrides)
        return JobStage(**params)

    def test_negative_density_rejected(self):
        with pytest.raises(ValueError):
            self._stage(map_ipb=-1)

    def test_reduce_needs_profile(self):
        with pytest.raises(ValueError):
            self._stage(reduces_per_node=1.0, reduce_profile=None)

    def test_bad_input_source(self):
        with pytest.raises(ValueError):
            self._stage(input_source="sideways")

    def test_bad_io_path_factor(self):
        with pytest.raises(ValueError):
            self._stage(io_path_factor=0.0)

    def test_bad_output_replication(self):
        with pytest.raises(ValueError):
            self._stage(output_replication=0)

    def test_bad_category(self):
        with pytest.raises(ValueError):
            WorkloadSpec(name="x", full_name="x", domain="d",
                         data_source="text", category="quantum",
                         stages=(self._stage(),))

    def test_spec_needs_stages(self):
        with pytest.raises(ValueError):
            WorkloadSpec(name="x", full_name="x", domain="d",
                         data_source="text", category=Category.COMPUTE,
                         stages=())
