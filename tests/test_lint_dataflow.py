"""`repro.lint.dataflow` / `repro.lint.taint`: the engine itself.

The rule-level behavior (which findings DET003-006 emit) lives in
``test_lint_rules.py``; this file pins the *engine* semantics the rules
build on — propagation through unpacking, branches and loop fixpoints,
sanitizer effects, shape tracking through lazy wrappers, the det-dict
and tame-listing proofs, and the cross-module constant resolver.
"""

from __future__ import annotations

import ast
import textwrap
from pathlib import Path

from repro.lint.registry import FileContext
from repro.lint.taint import analyze, dataflow_of

ANY = "src/repro/analysis/example.py"


def flow(source: str, relpath: str = ANY, root=None):
    source = textwrap.dedent(source)
    return analyze(ast.parse(source), relpath, root)


class TestValuePropagation:
    def test_tuple_unpack_taints_only_the_bound_name(self):
        clean = flow("""\
            import time
            def f(rows):
                t, n = time.time(), 5
                rows.append(n)
            """)
        assert clean.value_hits == []
        tainted = flow("""\
            import time
            def f(rows):
                t, n = time.time(), 5
                rows.append(t)
            """)
        assert len(tainted.value_hits) == 1
        assert tainted.value_hits[0].taint.kind == "wallclock"

    def test_augmented_assign_accumulates_taint(self):
        result = flow("""\
            import time
            def f(rows):
                total = 0.0
                total += time.time()
                rows.append(total)
            """)
        assert [h.taint.kind for h in result.value_hits] == ["wallclock"]

    def test_branch_join_unions_facts(self):
        result = flow("""\
            import time
            def f(fast, rows):
                t = 0.0
                if fast:
                    t = time.time()
                rows.append(t)
            """)
        assert len(result.value_hits) == 1

    def test_loop_fixpoint_carries_taint_backward(self):
        # `prev` only becomes tainted on the second traversal of the
        # loop body — a single forward pass would miss it.
        result = flow("""\
            import time
            def f(out):
                prev = 0.0
                t = 0.0
                for i in range(3):
                    prev = t
                    t = time.time()
                out.append(prev)
            """)
        assert len(result.value_hits) == 1

    def test_sink_hits_deduped_across_fixpoint_passes(self):
        # The loop body is re-walked to fixpoint; the one sink must be
        # reported exactly once.
        result = flow("""\
            import time
            def f(out):
                for i in range(3):
                    t = time.time()
                    out.append(t)
            """)
        assert len(result.value_hits) == 1


class TestSanitizers:
    def test_sorted_erases_order(self):
        result = flow("""\
            def f(xs, out):
                s = set(xs)
                ordered = sorted(s)
                out.extend(ordered)
            """)
        assert result.order_hits == []
        assert result.loop_iter_facts == {}

    def test_len_erases_everything(self):
        result = flow("""\
            import time
            def f(out):
                t = time.time()
                n = len([t])
                out.append(n)
            """)
        assert result.value_hits == []

    def test_sum_keeps_value_taint(self):
        # A sum of wall-clock reads is still a wall-clock artifact.
        result = flow("""\
            import time
            def f(out):
                total = sum([time.time()])
                out.append(total)
            """)
        assert [h.taint.kind for h in result.value_hits] == ["wallclock"]


class TestShapes:
    def test_lazy_wrapper_passes_set_shape_through(self):
        result = flow("""\
            def f(xs, out):
                s = set(xs)
                pairs = enumerate(s)
                for i, x in pairs:
                    out.append(x)
            """)
        assert len(result.loop_iter_facts) == 1

    def test_lazy_wrapper_creates_no_facts_for_plain_iterables(self):
        result = flow("""\
            def f(items, out):
                pairs = enumerate(items)
                for i, x in pairs:
                    out.append(x)
            """)
        assert result.loop_iter_facts == {}
        assert result.order_hits == []

    def test_kwargs_views_are_proven(self):
        result = flow("""\
            def f(**kw):
                return tuple(kw.keys())
            """)
        assert len(result.proven_views) == 1
        assert result.order_hits == []

    def test_local_dict_display_views_are_proven(self):
        result = flow("""\
            def f():
                d = {"atom": 1, "xeon": 2}
                return list(d.values())
            """)
        assert len(result.proven_views) == 1

    def test_mutated_module_dict_is_not_proven(self):
        result = flow("""\
            TABLE = {"a": 1}
            def g():
                TABLE["x"] = 2
            def f():
                return list(TABLE.values())
            """)
        assert result.proven_views == set()


class TestListings:
    def test_counted_listing_is_tame(self):
        result = flow("""\
            import os
            def f(path):
                names = os.listdir(path)
                return len(names)
            """)
        assert len(result.safe_listings) == 1

    def test_emitted_listing_is_not_tame(self):
        result = flow("""\
            import os
            def f(path, out):
                names = os.listdir(path)
                out.extend(names)
            """)
        assert result.safe_listings == set()
        assert any(h.taint.kind == "dirorder" for h in result.order_hits)

    def test_listing_passed_to_unknown_call_is_not_tame(self):
        result = flow("""\
            import os
            def f(path):
                names = os.listdir(path)
                process(names)
                return 0
            """)
        assert result.safe_listings == set()


class TestClockAliases:
    def test_stored_reference_call_detected(self):
        result = flow("""\
            import time
            def f():
                clock = time.time
                return clock()
            """)
        assert len(result.clock_alias_calls) == 1
        assert result.clock_alias_calls[0][1] == "clock"
        # The call's value is a wall-clock taint reaching `return`.
        assert [h.taint.kind for h in result.value_hits] == ["wallclock"]


class TestCrossModuleConstants:
    def _write(self, root: Path, relpath: str, source: str) -> None:
        path = root / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")

    def test_imported_dict_constant_is_proven(self, tmp_path):
        self._write(tmp_path, "src/repro/analysis/tables.py", """\
            SUITE = {"bzip2": 1.0, "mcf": 2.0}
            """)
        self._write(tmp_path, "src/repro/analysis/user.py", """\
            from .tables import SUITE
            def f():
                return list(SUITE.values())
            """)
        user = (tmp_path / "src/repro/analysis/user.py").read_text()
        result = analyze(ast.parse(user), "src/repro/analysis/user.py",
                         tmp_path)
        assert len(result.proven_views) == 1

    def test_reexported_constant_is_chased(self, tmp_path):
        self._write(tmp_path, "src/repro/analysis/tables.py", """\
            SUITE = {"bzip2": 1.0}
            """)
        self._write(tmp_path, "src/repro/analysis/__init__.py", """\
            from .tables import SUITE
            """)
        self._write(tmp_path, "src/repro/core/user.py", """\
            from repro.analysis import SUITE
            def f():
                return list(SUITE.values())
            """)
        user = (tmp_path / "src/repro/core/user.py").read_text()
        result = analyze(ast.parse(user), "src/repro/core/user.py",
                         tmp_path)
        assert len(result.proven_views) == 1

    def test_unresolvable_import_yields_no_proof(self, tmp_path):
        self._write(tmp_path, "src/repro/analysis/user.py", """\
            from .missing import SUITE
            def f():
                return list(SUITE.values())
            """)
        user = (tmp_path / "src/repro/analysis/user.py").read_text()
        result = analyze(ast.parse(user), "src/repro/analysis/user.py",
                         tmp_path)
        assert result.proven_views == set()


class TestCaching:
    def test_dataflow_of_caches_on_the_context(self):
        ctx = FileContext(ANY, "import time\nt = time.time()\n")
        first = dataflow_of(ctx)
        assert dataflow_of(ctx) is first
