"""Detailed data-level checks on selected experiment drivers.

The benchmarks assert shapes; these tests pin the *structure* of the
returned data so downstream consumers (report generator, CLI, plotting
users) can rely on it.
"""

from __future__ import annotations

import math

import pytest

from repro.analysis.experiments import (DATA_SIZES_GB, FREQS,
                                        fig5_edp_real, fig6_edp_micro,
                                        fig13_phase_edp_datasize,
                                        fig14_accel_sweep, table3_cost)
from repro.core.acceleration import PAPER_ACCEL_RATES
from repro.core.cost import PAPER_CORE_COUNTS
from repro.workloads.base import MICRO_BENCHMARKS, REAL_WORLD


class TestFig5Data:
    @pytest.fixture(scope="class")
    def exp(self, characterizer):
        return fig5_edp_real(characterizer)

    def test_series_keys(self, exp):
        for wl in REAL_WORLD:
            for machine in ("atom", "xeon"):
                assert (wl, machine, "entire") in exp.data["series"]

    def test_series_length_matches_freqs(self, exp):
        for values in exp.data["series"].values():
            assert len(values) == len(FREQS)

    def test_normalization_reference(self, exp):
        """Values are normalized to Atom @ 1.2 GHz / 512 MB, so the Atom
        series starts exactly at 1.0."""
        for wl in REAL_WORLD:
            atom = exp.data["series"][(wl, "atom", "entire")]
            assert atom[0] == pytest.approx(1.0)

    def test_all_values_positive_finite(self, exp):
        for values in exp.data["series"].values():
            assert all(v > 0 and math.isfinite(v) for v in values)


class TestFig6Data:
    def test_sort_has_no_reduce_but_has_entire(self, characterizer):
        exp = fig6_edp_micro(characterizer)
        assert ("sort", "atom", "entire") in exp.data["series"]
        for wl in MICRO_BENCHMARKS:
            assert (wl, "xeon", "entire") in exp.data["series"]


class TestFig13Data:
    def test_grid_covers_all_sizes(self, characterizer):
        exp = fig13_phase_edp_datasize(characterizer)
        grid = exp.data["grid"]
        for machine in ("atom", "xeon"):
            for wl in MICRO_BENCHMARKS + REAL_WORLD:
                for gb in DATA_SIZES_GB:
                    assert (machine, wl, gb) in grid


class TestFig14Data:
    @pytest.fixture(scope="class")
    def exp(self, characterizer):
        return fig14_accel_sweep(characterizer)

    def test_rates_match_paper_sweep(self, exp):
        for wl, points in exp.data["series"].items():
            assert tuple(r for r, _v in points) == PAPER_ACCEL_RATES

    def test_rate_one_is_neutral(self, exp):
        """With no acceleration Eq. (1) must be ~1 by construction."""
        for wl, points in exp.data["series"].items():
            assert points[0][1] == pytest.approx(1.0, abs=0.02), wl


class TestTable3Data:
    @pytest.fixture(scope="class")
    def exp(self, characterizer):
        return table3_cost(characterizer)

    def test_all_workloads_tabulated(self, exp):
        assert set(exp.data["tables"]) == set(MICRO_BENCHMARKS + REAL_WORLD)

    def test_rows_cover_core_sweep(self, exp):
        for table in exp.data["tables"].values():
            for machine in ("atom", "xeon"):
                assert len(table.row("EDP", machine)) == len(
                    PAPER_CORE_COUNTS)

    def test_metric_ordering_within_cell(self, exp):
        """For execution times above one second, ED2P > EDP and
        ED2AP > EDAP by construction."""
        for table in exp.data["tables"].values():
            for cell in table.cells.values():
                if cell.execution_time_s > 1.0:
                    assert cell.metric("ED2P") > cell.metric("EDP")
                    assert cell.metric("ED2AP") > cell.metric("EDAP")

    def test_render_contains_all_metrics(self, exp):
        text = exp.render()
        for metric in ("EDP", "ED2P", "EDAP", "ED2AP"):
            assert metric in text
