"""Unit tests for the cluster-level scheduling policies."""

from __future__ import annotations

import pytest

from repro.cluster.arrivals import JobRequest
from repro.cluster.scheduler import (POLICY_NAMES, CapacityScheduler,
                                     FairScheduler, FifoScheduler,
                                     HeteroScheduler, SlotLease, make_policy)


def req(job_id, nodes=2, workload="wordcount", user="prod-ana",
        submit_s=None):
    return JobRequest(job_id=job_id,
                      submit_s=float(job_id) if submit_s is None
                      else submit_s,
                      workload=workload, nodes=nodes,
                      data_per_node_gb=0.25, user=user)


def lease(request, pool="atom", granted_s=0.0):
    names = tuple(f"{pool}{i}" for i in range(request.nodes))
    return SlotLease(job_id=request.job_id, machine=pool, node_names=names,
                     cores_per_node=4, granted_s=granted_s)


class TestSlotLease:
    def test_slot_plan_shape(self):
        plan = lease(req(0, nodes=3)).slot_plan()
        assert plan == {"atom0": 4, "atom1": 4, "atom2": 4}
        plan = SlotLease(0, "atom", ("a", "b"), 8, 0.0).slot_plan()
        assert plan == {"a": 8, "b": 8}

    def test_validation(self):
        with pytest.raises(ValueError):
            SlotLease(0, "atom", (), 4, 0.0)
        with pytest.raises(ValueError):
            SlotLease(0, "atom", ("a",), 0, 0.0)


class TestFifo:
    def test_grants_head_when_it_fits(self):
        queue = (req(0, nodes=2), req(1, nodes=1))
        pick = FifoScheduler().select(queue, {"atom": 2, "xeon": 0}, 0.0)
        assert pick == (queue[0], "atom")

    def test_head_of_line_blocking(self):
        queue = (req(0, nodes=5), req(1, nodes=1))
        assert FifoScheduler().select(queue, {"atom": 4, "xeon": 2},
                                      0.0) is None

    def test_prefers_widest_pool_with_lexical_tiebreak(self):
        queue = (req(0, nodes=1),)
        assert FifoScheduler().select(queue, {"xeon": 5, "atom": 3},
                                      0.0)[1] == "xeon"
        assert FifoScheduler().select(queue, {"xeon": 3, "atom": 3},
                                      0.0)[1] == "atom"


class TestFair:
    def test_least_loaded_user_first(self):
        policy = FairScheduler()
        first = req(0, user="prod-ana")
        policy.on_start(first, lease(first), 0.0)
        queue = (req(1, user="prod-ana"), req(2, user="batch-sci"))
        pick = policy.select(queue, {"atom": 4}, 10.0)
        assert pick[0].user == "batch-sci"

    def test_node_seconds_break_running_ties(self):
        policy = FairScheduler()
        heavy = req(0, user="prod-ana")
        granted = lease(heavy, granted_s=0.0)
        policy.on_start(heavy, granted, 0.0)
        policy.on_finish(heavy, granted, 100.0)   # prod-ana burned 200 ns
        queue = (req(1, user="prod-ana"), req(2, user="batch-sci"))
        pick = policy.select(queue, {"atom": 4}, 100.0)
        assert pick[0].user == "batch-sci"

    def test_work_conserving_skips_unfittable(self):
        queue = (req(0, nodes=6, user="prod-ana"),
                 req(1, nodes=1, user="prod-etl"))
        pick = FairScheduler().select(queue, {"atom": 2}, 0.0)
        assert pick[0].job_id == 1


class TestCapacity:
    def test_under_served_queue_wins(self):
        policy = CapacityScheduler()
        policy.prepare({"atom": 10})
        running = req(0, nodes=5, user="prod-ana")
        policy.on_start(running, lease(running), 0.0)
        queue = (req(1, user="prod-etl"), req(2, user="batch-sci"))
        pick = policy.select(queue, {"atom": 5}, 1.0)
        assert pick[0].queue == "batch"

    def test_fifo_within_a_queue(self):
        policy = CapacityScheduler()
        policy.prepare({"atom": 10})
        queue = (req(0, nodes=6, user="prod-ana"),
                 req(1, nodes=1, user="prod-etl"),
                 req(2, nodes=1, user="batch-sci"))
        pick = policy.select(queue, {"atom": 2}, 0.0)
        # prod's head does not fit, so prod is skipped entirely this
        # round (FIFO within the queue) and batch's head runs.
        assert pick[0].job_id == 2

    def test_unknown_queue_gets_smallest_share(self):
        policy = CapacityScheduler()
        policy.prepare({"atom": 10})
        queue = (req(0, user="prod-ana"), req(1, user="mystery-user"))
        pick = policy.select(queue, {"atom": 10}, 0.0)
        assert pick[0].queue == "prod"   # equal usage: bigger guarantee wins

    def test_bad_shares_rejected(self):
        with pytest.raises(ValueError):
            CapacityScheduler(shares={"prod": 0.0})


class TestHetero:
    def test_compute_prefers_little_io_prefers_big(self):
        policy = HeteroScheduler()
        assert policy.preferred_pool("wordcount") == "atom"
        assert policy.preferred_pool("sort") == "xeon"

    def test_hybrid_tiebreak_follows_goal(self):
        assert HeteroScheduler(goal="EDP").preferred_pool("grep") == "atom"
        assert HeteroScheduler(goal="ED2AP").preferred_pool("grep") == "xeon"

    def test_places_on_preferred_pool(self):
        policy = HeteroScheduler()
        policy.prepare({"atom": 4, "xeon": 4})
        pick = policy.select((req(0, workload="wordcount"),),
                             {"atom": 4, "xeon": 4}, 0.0)
        assert pick[1] == "atom"

    def test_backfills_past_a_blocked_head(self):
        policy = HeteroScheduler()
        policy.prepare({"atom": 4, "xeon": 4})
        queue = (req(0, workload="wordcount"),       # wants atom: full
                 req(1, workload="sort"))            # wants xeon: free
        pick = policy.select(queue, {"atom": 0, "xeon": 4}, 0.0)
        assert pick == (queue[1], "xeon")

    def test_patience_unlocks_the_other_pool(self):
        policy = HeteroScheduler(patience_s=60.0)
        policy.prepare({"atom": 4, "xeon": 4})
        queue = (req(0, workload="wordcount", submit_s=0.0),)
        assert policy.select(queue, {"atom": 0, "xeon": 4}, 30.0) is None
        pick = policy.select(queue, {"atom": 0, "xeon": 4}, 60.0)
        assert pick == (queue[0], "xeon")

    def test_oversized_job_spills_immediately(self):
        policy = HeteroScheduler(patience_s=1e9)
        policy.prepare({"atom": 2, "xeon": 8})
        queue = (req(0, nodes=4, workload="wordcount", submit_s=0.0),)
        pick = policy.select(queue, {"atom": 2, "xeon": 8}, 0.0)
        assert pick == (queue[0], "xeon")

    def test_negative_patience_rejected(self):
        with pytest.raises(ValueError):
            HeteroScheduler(patience_s=-1.0)


class TestRegistry:
    def test_every_name_constructs_fresh_instances(self):
        for name in POLICY_NAMES:
            a, b = make_policy(name), make_policy(name)
            assert a.name == name
            assert a is not b

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_policy("random")

    def test_hetero_options_flow_through(self):
        policy = make_policy("hetero", goal="ed2ap", patience_s=42.0)
        assert policy.goal == "ED2AP"
        assert policy.patience_s == 42.0
