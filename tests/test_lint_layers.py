"""`repro.lint.layers` + ARCH001: import graph, tiers, cycles, contract.

Unit tests for the graph builder and the contract model, fixture-tree
tests for the ARCH001 rule (both halves: per-file edge check and the
whole-tree cycle check), and the self-check that the committed tree
satisfies the committed ``import-contract.json``.
"""

from __future__ import annotations

import ast
import io
import json
import textwrap
from pathlib import Path

from repro.lint.cli import run_lint
from repro.lint.layers import (Contract, ModuleGraph, iter_import_edges,
                               load_contract, module_name_for)

ROOT = Path(__file__).resolve().parent.parent


def edges_of(source: str, module: str, is_pkg: bool = False):
    tree = ast.parse(textwrap.dedent(source))
    return list(iter_import_edges(tree, module, is_pkg))


class TestModuleNames:
    def test_src_prefix_stripped(self):
        assert module_name_for("src/repro/analysis/sweep.py") == \
            "repro.analysis.sweep"

    def test_package_init_names_the_package(self):
        assert module_name_for("src/repro/sim/__init__.py") == "repro.sim"


class TestImportEdgeExtraction:
    def test_top_level_absolute_import(self):
        found = edges_of("import repro.sim.engine\n", "repro.cli")
        assert ("repro.sim.engine", 1, False, False) in found

    def test_relative_from_import_resolves(self):
        found = edges_of("from ..sim import engine\n",
                         "repro.analysis.sweep")
        targets = {t for t, _, _, _ in found}
        assert "repro.sim" in targets and "repro.sim.engine" in targets

    def test_function_body_import_is_deferred(self):
        found = edges_of("""\
            def f():
                from repro.sim import engine
                return engine
            """, "repro.cli")
        assert all(deferred for _, _, deferred, _ in found)
        assert found  # the edge is still recorded

    def test_type_checking_import_is_marked(self):
        found = edges_of("""\
            from typing import TYPE_CHECKING
            if TYPE_CHECKING:
                from repro.sim.engine import Simulator
            """, "repro.cli")
        assert found and all(tc for _, _, _, tc in found)

    def test_non_repro_imports_ignored(self):
        assert edges_of("import os\nfrom json import dumps\n",
                        "repro.cli") == []


def graph_from(sources):
    """Build a ModuleGraph from ``{module: source}`` (none are pkgs)."""
    return ModuleGraph.from_trees(
        [(module, ast.parse(textwrap.dedent(src)), False)
         for module, src in sources.items()])


class TestModuleGraph:
    def test_edges_resolve_to_known_modules(self):
        graph = graph_from({
            "repro.a": "from repro.b import thing\n",
            "repro.b": "x = 1\n",
        })
        assert [(e.module, e.target) for e in graph.edges] == \
            [("repro.a", "repro.b")]

    def test_ancestor_package_edge_filtered(self):
        # `from . import sibling` inside a package names the importer's
        # own ancestor; only the sibling edge carries information.
        graph = ModuleGraph.from_trees([
            ("repro.obs", ast.parse("x = 1\n"), True),
            ("repro.obs.slog",
             ast.parse("from . import reqtrace\n"), False),
            ("repro.obs.reqtrace", ast.parse("y = 2\n"), False),
        ])
        pairs = {(e.module, e.target) for e in graph.edges}
        assert pairs == {("repro.obs.slog", "repro.obs.reqtrace")}

    def test_runtime_cycle_detected(self):
        graph = graph_from({
            "repro.a": "from repro.b import thing\n",
            "repro.b": "from repro.a import other\n",
        })
        assert graph.cycles() == [["repro.a", "repro.b"]]

    def test_deferred_import_breaks_the_cycle(self):
        graph = graph_from({
            "repro.a": "from repro.b import thing\n",
            "repro.b": ("def late():\n"
                        "    from repro.a import other\n"
                        "    return other\n"),
        })
        assert graph.cycles() == []

    def test_to_dot_clusters_and_dashes(self):
        graph = graph_from({
            "repro.a": ("from repro.b import thing\n"
                        "def f():\n"
                        "    from repro.c import late\n"
                        "    return late\n"),
            "repro.b": "x = 1\n",
            "repro.c": "y = 2\n",
        })
        contract = Contract([("repro.a", "alpha"), ("repro.b", "beta"),
                             ("repro.c", "beta")],
                            {("alpha", "beta")}, set())
        dot = graph.to_dot(contract)
        assert 'subgraph "cluster_alpha"' in dot
        assert '"repro.a" -> "repro.b";' in dot
        assert '"repro.a" -> "repro.c" [style=dashed];' in dot

    def test_to_json_shape(self):
        graph = graph_from({
            "repro.a": "from repro.b import thing\n",
            "repro.b": "x = 1\n",
        })
        contract = Contract([("repro.a", "alpha"), ("repro.b", "beta")],
                            set(), set())
        doc = graph.to_json(contract)
        assert doc["version"] == 1
        assert doc["modules"] == ["repro.a", "repro.b"]
        assert doc["tiers"] == {"repro.a": "alpha", "repro.b": "beta"}
        assert doc["cycles"] == []
        (violation,) = doc["violations"]
        assert violation["from"] == "repro.a"
        assert violation["to_tier"] == "beta"


class TestContract:
    def _contract(self):
        return Contract(
            tiers=[("repro.sim", "model"), ("repro.obs", "tracing"),
                   ("repro.obs.slog", "telemetry")],
            allowed={("model", "tracing")},
            exceptions={("repro.sim.special", "repro.obs.slog")})

    def test_longest_prefix_wins(self):
        contract = self._contract()
        assert contract.tier_of("repro.obs.prof") == "tracing"
        assert contract.tier_of("repro.obs.slog") == "telemetry"
        assert contract.tier_of("repro.elsewhere") == "unassigned"

    def test_same_tier_always_allowed(self):
        contract = self._contract()
        assert contract.edge_violation("repro.sim.engine",
                                       "repro.sim.events", 1, False) is None

    def test_whitelisted_and_forbidden_edges(self):
        contract = self._contract()
        assert contract.edge_violation("repro.sim.engine",
                                       "repro.obs.prof", 1, False) is None
        violation = contract.edge_violation("repro.sim.engine",
                                            "repro.obs.slog", 3, False)
        assert violation is not None
        assert (violation.from_tier, violation.to_tier) == \
            ("model", "telemetry")
        assert "import-contract.json" in violation.describe()

    def test_exception_spares_the_named_edge_only(self):
        contract = self._contract()
        assert contract.edge_violation("repro.sim.special",
                                       "repro.obs.slog", 1, False) is None
        assert contract.edge_violation("repro.sim.other",
                                       "repro.obs.slog", 1, False) is not None

    def test_round_trip_through_dict(self):
        contract = self._contract()
        again = Contract.from_dict(contract.as_dict())
        assert again.as_dict() == contract.as_dict()


def _write(root: Path, relpath: str, content: str) -> None:
    path = root / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(content), encoding="utf-8")


def _fixture_repo(tmp_path: Path) -> Path:
    _write(tmp_path, "pyproject.toml", "[project]\nname='x'\n")
    return tmp_path


class TestARCH001:
    def test_cross_tier_import_flagged(self, tmp_path):
        root = _fixture_repo(tmp_path)
        _write(root, "import-contract.json", json.dumps({
            "tiers": {"repro.sim": "model", "repro.serve": "serve"},
            "allowed_edges": [], "exceptions": []}))
        _write(root, "src/repro/serve/service.py", "x = 1\n")
        _write(root, "src/repro/sim/engine.py",
               "from repro.serve import service\n")
        out = io.StringIO()
        code = run_lint(root=str(root), output_format="json", stdout=out)
        assert code == 1
        report = json.loads(out.getvalue())
        arch = [f for f in report["findings"] if f["rule"] == "ARCH001"]
        assert len(arch) == 1
        assert arch[0]["path"] == "src/repro/sim/engine.py"
        assert "model" in arch[0]["message"]
        assert "serve" in arch[0]["message"]

    def test_runtime_cycle_flagged_without_contract(self, tmp_path):
        # The cycle half needs no contract file.
        root = _fixture_repo(tmp_path)
        _write(root, "src/repro/a.py", "from repro.b import thing\n")
        _write(root, "src/repro/b.py", "from repro.a import other\n")
        out = io.StringIO()
        code = run_lint(root=str(root), output_format="json", stdout=out)
        assert code == 1
        report = json.loads(out.getvalue())
        arch = [f for f in report["findings"] if f["rule"] == "ARCH001"]
        assert len(arch) == 1
        assert "import cycle" in arch[0]["message"]
        assert "repro.a -> repro.b -> repro.a" in arch[0]["message"]

    def test_clean_tree_passes(self, tmp_path):
        root = _fixture_repo(tmp_path)
        _write(root, "import-contract.json", json.dumps({
            "tiers": {"repro.sim": "model", "repro.obs": "tracing"},
            "allowed_edges": [["model", "tracing"]], "exceptions": []}))
        _write(root, "src/repro/obs/prof.py", "x = 1\n")
        _write(root, "src/repro/sim/engine.py",
               "from repro.obs import prof\n")
        assert run_lint(root=str(root), stdout=io.StringIO()) == 0


class TestGraphCli:
    def _repo(self, tmp_path):
        root = _fixture_repo(tmp_path)
        _write(root, "src/repro/a.py", "from repro.b import thing\n")
        _write(root, "src/repro/b.py", "x = 1\n")
        return root

    def test_graph_json(self, tmp_path):
        out = io.StringIO()
        assert run_lint(root=str(self._repo(tmp_path)), graph="json",
                        stdout=out) == 0
        doc = json.loads(out.getvalue())
        assert doc["modules"] == ["repro.a", "repro.b"]
        assert doc["cycles"] == []

    def test_graph_dot(self, tmp_path):
        out = io.StringIO()
        assert run_lint(root=str(self._repo(tmp_path)), graph="dot",
                        stdout=out) == 0
        assert out.getvalue().startswith("digraph repro_imports {")

    def test_changed_outside_git_falls_back_to_full_tree(self, tmp_path):
        root = self._repo(tmp_path)
        out = io.StringIO()
        assert run_lint(root=str(root), changed=True, stdout=out) == 0
        assert "full tree" in out.getvalue()


class TestCommittedTreeSelfCheck:
    """The real repo must satisfy its own committed contract."""

    def test_contract_file_is_loadable(self):
        assert load_contract(ROOT) is not None

    def test_no_runtime_cycles(self):
        graph = ModuleGraph.build(ROOT)
        assert graph.cycles() == []

    def test_no_contract_violations(self):
        graph = ModuleGraph.build(ROOT)
        contract = load_contract(ROOT)
        violations = contract.violations(graph)
        assert violations == [], "\n".join(
            v.describe() for v in violations)

    def test_committed_dot_graph_is_current(self):
        # docs/import-graph.dot is a committed render of the live graph;
        # CI regenerates the JSON form, this pins the DOT form.
        committed = (ROOT / "docs" / "import-graph.dot").read_text(
            encoding="utf-8")
        live = ModuleGraph.build(ROOT).to_dot(load_contract(ROOT))
        assert committed == live, (
            "docs/import-graph.dot is stale; regenerate with "
            "`PYTHONPATH=src python -m repro.cli lint --graph dot "
            "> docs/import-graph.dot`")
