"""Unit tests for the simulated Watts-Up PRO meter."""

from __future__ import annotations

import pytest

from repro.arch.dvfs import OperatingPoint
from repro.arch.meter import WattsUpMeter
from repro.arch.power import NodePower, PowerSpec
from repro.sim.trace import TraceRecorder


def _power():
    spec = PowerSpec(base_watts=20.0, core_dynamic_coeff=0.0,
                     core_static_uplift=0.0, disk_active_uplift=10.0,
                     nic_active_uplift=4.0, idle_voltage=0.8)
    return NodePower(spec, OperatingPoint(1.8e9, 1.0))


def _meter(interval=1.0):
    return WattsUpMeter({"n0": _power()}, sample_interval=interval)


def _trace():
    tr = TraceRecorder()
    tr.add(0.0, 10.0, "n0", "disk", "read")      # +10 W for 10 s
    tr.add(2.0, 6.0, "n0", "nic", "shuffle")     # +4 W for 4 s
    return tr


class TestWaveform:
    def test_levels_follow_edges(self):
        waveform = _meter().waveform(_trace())
        assert waveform[0] == (0.0, 30.0)          # idle 20 + disk 10
        assert (2.0, 34.0) in waveform             # + nic
        assert (6.0, 30.0) in waveform             # nic done
        assert waveform[-1] == (10.0, 20.0)        # back to idle

    def test_empty_trace_gives_empty_waveform(self):
        assert _meter().waveform(TraceRecorder()) == []


class TestSampling:
    def test_one_hertz_sample_count(self):
        readings = _meter(1.0).sample(_trace())
        assert len(readings) == 11  # t = 0..10 inclusive

    def test_sampled_values(self):
        readings = {r.time: r.watts for r in _meter(1.0).sample(_trace())}
        assert readings[1.0] == pytest.approx(30.0)
        assert readings[3.0] == pytest.approx(34.0)
        assert readings[10.0] == pytest.approx(20.0)

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            WattsUpMeter({"n0": _power()}, sample_interval=0.0)


class TestEstimator:
    def test_dynamic_power_subtracts_idle(self):
        meter = _meter(0.001)
        dynamic = meter.dynamic_power(_trace())
        exact_avg = meter.exact_dynamic_energy(_trace()) / 10.0
        assert dynamic == pytest.approx(exact_avg, rel=0.02)

    def test_exact_energy(self):
        assert _meter().exact_dynamic_energy(_trace()) == pytest.approx(
            10 * 10.0 + 4 * 4.0)

    def test_finer_sampling_converges(self):
        trace = _trace()
        exact = _meter().exact_dynamic_energy(trace) / 10.0
        coarse = abs(_meter(3.0).dynamic_power(trace) - exact)
        fine = abs(_meter(0.01).dynamic_power(trace) - exact)
        assert fine <= coarse + 1e-9

    def test_idle_trace_reads_idle(self):
        meter = _meter()
        assert meter.average_power(TraceRecorder()) == pytest.approx(20.0)
        assert meter.dynamic_power(TraceRecorder()) == 0.0
