"""Unit tests for obs.metrics: Counter and the promoted LogHistogram API."""

import math

import pytest

from repro.obs.metrics import Counter, CounterRegistry, LogHistogram


class TestCounter:
    def test_step_function_semantics(self):
        c = Counter("maps", "tasks")
        c.set(0.0, 2.0)
        c.add(1.0, 3.0)
        assert c.value == 5.0
        assert c.value_at(-1.0) == 0.0
        assert c.value_at(0.5) == 2.0
        assert c.value_at(1.0) == 5.0

    def test_dedup_keeps_samples_compact(self):
        c = Counter("x")
        c.set(0.0, 1.0)
        c.set(1.0, 1.0)            # no step: dropped
        c.set(2.0, 2.0)
        c.set(2.0, 3.0)            # same instant: collapsed
        assert c.samples == [(0.0, 1.0), (2.0, 3.0)]

    def test_registry_creates_on_first_use(self):
        reg = CounterRegistry()
        a = reg.counter("a", "J")
        assert reg.counter("a") is a
        assert "a" in reg and len(reg) == 1


class TestBucketEdges:
    def test_bucket_of_agrees_with_bucket_bounds_everywhere(self):
        """The regression the boundary snap fixed: for every bucket,
        values at and just inside its exact bounds must land in it."""
        h = LogHistogram()
        for i in range(h.N_BUCKETS):
            low, high = h.bucket_bounds(i)
            assert h.bucket_of(low) == i, f"low edge of bucket {i}"
            below_high = math.nextafter(high, 0.0)
            assert h.bucket_of(below_high) == i, \
                f"value just below high edge of bucket {i}"
            if i + 1 < h.N_BUCKETS:
                assert h.bucket_of(high) == i + 1, \
                    f"high edge must open bucket {i + 1}"

    def test_out_of_range_values_clamp(self):
        h = LogHistogram()
        assert h.bucket_of(0.0) == 0
        assert h.bucket_of(1e-12) == 0
        assert h.bucket_of(1e12) == h.N_BUCKETS - 1

    def test_min_max_survive_clamping(self):
        h = LogHistogram()
        h.record(1e-12)
        h.record(1e12)
        assert h.min == 1e-12 and h.max == 1e12


class TestQuantiles:
    def test_quantile_matches_percentile(self):
        h = LogHistogram()
        for v in (0.001, 0.002, 0.004, 0.008, 0.016):
            h.record(v)
        for q in (0.5, 0.9, 0.95, 0.99, 1.0):
            assert h.quantile(q) == h.percentile(q * 100.0)

    def test_quantile_accuracy_within_bucket_width(self):
        h = LogHistogram()
        values = [0.0001 * (1.09 ** i) for i in range(200)]
        for v in values:
            h.record(v)
        values.sort()
        for q in (0.5, 0.95, 0.99):
            exact = values[min(int(q * len(values)), len(values) - 1)]
            approx = h.quantile(q)
            # one bucket is a factor of sqrt(2); allow one bucket of slack
            assert exact / h.BASE <= approx <= exact * h.BASE

    def test_quantile_domain_validation(self):
        h = LogHistogram()
        h.record(0.5)
        for bad in (0.0, -0.1, 1.0001):
            with pytest.raises(ValueError):
                h.quantile(bad)
        with pytest.raises(ValueError):
            h.percentile(0.0)

    def test_empty_histogram_quantile_is_zero(self):
        assert LogHistogram().quantile(0.99) == 0.0


class TestMerge:
    def test_merge_equals_recording_into_one(self):
        a, b, combined = LogHistogram(), LogHistogram(), LogHistogram()
        left = [0.001 * (1.3 ** i) for i in range(40)]
        right = [0.01 * (1.7 ** i) for i in range(25)]
        for v in left:
            a.record(v)
            combined.record(v)
        for v in right:
            b.record(v)
            combined.record(v)
        a.merge(b)
        assert a.counts == combined.counts
        assert a.total == combined.total
        assert a.min == combined.min and a.max == combined.max
        for q in (0.5, 0.95, 0.99, 1.0):
            assert a.quantile(q) == combined.quantile(q)

    def test_merge_into_empty_and_with_empty(self):
        a, b = LogHistogram(), LogHistogram()
        b.record(0.25, count=3)
        a.merge(b)                   # empty <- populated
        assert a.total == 3 and a.min == 0.25 and a.max == 0.25
        a.merge(LogHistogram())      # populated <- empty
        assert a.total == 3 and a.min == 0.25

    def test_merge_rejects_mismatched_layouts(self):
        a = LogHistogram()
        b = LogHistogram()
        b.counts = b.counts[:-1]     # simulate a different N_BUCKETS
        with pytest.raises(ValueError):
            a.merge(b)

    def test_merge_is_associative_on_quantiles(self):
        parts = []
        for seed in range(3):
            h = LogHistogram()
            for i in range(30):
                h.record(0.0005 * (1.4 ** ((seed * 31 + i * 7) % 37)))
            parts.append(h)
        left = LogHistogram()
        for h in parts:
            left.merge(h)
        right = LogHistogram()
        for h in reversed(parts):
            right.merge(h)
        assert left.counts == right.counts
        assert left.quantile(0.99) == right.quantile(0.99)


class TestSnapshot:
    def test_to_dict_round_trips_sparse_buckets(self):
        h = LogHistogram()
        h.record(0.002, count=5)
        h.record(7.5)
        d = h.to_dict()
        assert d["total"] == 6
        assert d["min_s"] == 0.002 and d["max_s"] == 7.5
        assert sum(d["buckets"].values()) == 6
        rebuilt = LogHistogram()
        for idx, n in d["buckets"].items():
            rebuilt.counts[int(idx)] = n
        assert rebuilt.counts == h.counts
