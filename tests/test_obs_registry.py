"""`repro.obs.registry`: typed instruments, canonical render, parser.

The renderer and the conformance parser are two halves of one contract:
everything the registry emits must parse, and every exposition bug the
PR 8 hand-rolled ``/metrics`` had (no TYPE/HELP, ``quantile`` on a
non-summary, missing ``_sum``/``_count``) must be *rejected* by the
parser, so the format cannot silently regress.
"""

from __future__ import annotations

import math
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.obs.registry import (ExpositionError, MetricsRegistry,
                                parse_exposition)

ROOT = Path(__file__).resolve().parent.parent


def _sample_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("requests_total", "Requests.",
                labels=("route", "status"))
    reg.counter("requests_total", "Requests.",
                labels=("route", "status")).labels("/simulate", "200").inc(3)
    reg.counter("shed_total", "Shed.").inc(2)
    reg.gauge("inflight_cells", "Inflight.").set(7)
    hist = reg.histogram("latency_seconds", "Latency.", labels=("route",))
    for v in (0.001, 0.01, 0.01, 0.25, 3.0):
        hist.labels("/simulate").observe(v)
    return reg


class TestInstruments:
    def test_counter_monotonic(self):
        reg = MetricsRegistry()
        c = reg.counter("a_total", "A.")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_counter_sync_never_goes_backwards(self):
        reg = MetricsRegistry()
        c = reg.counter("a_total", "A.")
        c.sync(10)
        c.sync(4)          # external tally reset: keep the high-water mark
        assert c.value == 10

    def test_gauge_set_add(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth", "D.")
        g.set(5)
        g.add(-2)
        assert g.value == 3

    def test_histogram_sum_count_quantile(self):
        reg = MetricsRegistry()
        h = reg.histogram("h_seconds", "H.")
        for v in (0.1, 0.2, 0.4):
            h.observe(v)
        solo = h.labels()
        assert solo.count == 3
        assert solo.sum == pytest.approx(0.7)
        assert 0.05 < solo.quantile(0.5) < 0.4

    def test_labels_by_name_and_position_agree(self):
        reg = MetricsRegistry()
        fam = reg.counter("r_total", "R.", labels=("route", "status"))
        fam.labels("/x", "200").inc()
        fam.labels(status="200", route="/x").inc()
        assert fam.labels("/x", "200").value == 2

    def test_label_arity_and_unknown_names_raise(self):
        reg = MetricsRegistry()
        fam = reg.counter("r_total", "R.", labels=("route",))
        with pytest.raises(ValueError):
            fam.labels("/x", "extra")
        with pytest.raises(ValueError):
            fam.labels(nope="/x")
        with pytest.raises(ValueError):
            fam.inc()          # labelled family has no solo child

    def test_reregistration_idempotent_but_conflicts_raise(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", "X.")
        assert reg.counter("x_total", "X.") is a
        with pytest.raises(ValueError):
            reg.gauge("x_total", "X.")
        with pytest.raises(ValueError):
            reg.counter("x_total", "X.", labels=("route",))

    def test_invalid_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("bad name", "B.")
        with pytest.raises(ValueError):
            reg.counter("ok_total", "OK.", labels=("bad-label",))
        with pytest.raises(ValueError):
            reg.counter("no_help", "")


class TestPrometheusRender:
    def test_round_trips_through_conformance_parser(self):
        text = _sample_registry().render_prometheus()
        families = parse_exposition(text)
        assert set(families) == {
            "repro_requests_total", "repro_shed_total",
            "repro_inflight_cells", "repro_latency_seconds"}
        assert families["repro_requests_total"]["type"] == "counter"
        assert families["repro_latency_seconds"]["type"] == "histogram"

    def test_has_help_and_type_for_every_family(self):
        text = _sample_registry().render_prometheus()
        for family in ("repro_requests_total", "repro_shed_total",
                       "repro_inflight_cells", "repro_latency_seconds"):
            assert f"# HELP {family} " in text
            assert f"# TYPE {family} " in text

    def test_histogram_children_expose_sum_count_and_inf(self):
        text = _sample_registry().render_prometheus()
        assert 'repro_latency_seconds_bucket{route="/simulate",le="+Inf"} 5' \
            in text
        assert 'repro_latency_seconds_sum{route="/simulate"} ' in text
        assert 'repro_latency_seconds_count{route="/simulate"} 5' in text

    def test_no_quantile_labels_anywhere(self):
        assert "quantile=" not in _sample_registry().render_prometheus()

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        fam = reg.counter("odd_total", "Odd.", labels=("path",))
        fam.labels('with"quote\\and\nnewline').inc()
        text = reg.render_prometheus()
        parsed = parse_exposition(text)
        ((_name, labels, value),) = parsed["repro_odd_total"]["samples"]
        assert labels["path"] == 'with"quote\\and\nnewline'
        assert value == 1

    def test_render_is_deterministic_across_processes(self):
        """Same observations => byte-identical text in a fresh process."""
        script = textwrap.dedent("""\
            from repro.obs.registry import MetricsRegistry
            reg = MetricsRegistry()
            fam = reg.counter("requests_total", "Requests.",
                              labels=("route", "status"))
            fam.labels("/simulate", "200").inc(3)
            fam.labels("/compare", "429").inc()
            reg.counter("shed_total", "Shed.").inc(2)
            reg.gauge("inflight_cells", "Inflight.").set(7)
            hist = reg.histogram("latency_seconds", "Latency.",
                                 labels=("route",))
            for v in (0.001, 0.01, 0.01, 0.25, 3.0):
                hist.labels("/simulate").observe(v)
            import sys
            sys.stdout.write(reg.render_prometheus())
        """)
        outputs = []
        for seed in ("0", "1234"):
            proc = subprocess.run(
                [sys.executable, "-c", script], capture_output=True,
                text=True, check=True,
                env={"PYTHONPATH": str(ROOT / "src"),
                     "PYTHONHASHSEED": seed})
            outputs.append(proc.stdout)
        assert outputs[0] == outputs[1]
        parse_exposition(outputs[0])

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_prometheus() == ""


class TestJSONRender:
    def test_scalars_labels_and_histograms(self):
        doc = _sample_registry().render_json()
        assert doc["shed_total"] == 2
        assert doc["inflight_cells"] == 7
        assert doc["requests_total"] == {"/simulate 200": 3}
        assert doc["latency_seconds"]["/simulate"]["total"] == 5

    def test_unlabelled_histogram_is_flat(self):
        reg = MetricsRegistry()
        reg.histogram("h_seconds", "H.").observe(0.5)
        doc = reg.render_json()
        assert doc["h_seconds"]["total"] == 1
        assert doc["h_seconds"]["sum_s"] == pytest.approx(0.5)


class TestConformanceParser:
    def test_rejects_sample_without_type(self):
        with pytest.raises(ExpositionError, match="TYPE"):
            parse_exposition("repro_x_total 1\n")

    def test_rejects_type_without_help(self):
        with pytest.raises(ExpositionError, match="HELP"):
            parse_exposition("# TYPE repro_x_total counter\n"
                             "repro_x_total 1\n")

    def test_rejects_quantile_on_non_summary(self):
        doc = ("# HELP repro_lat Latency.\n"
               "# TYPE repro_lat gauge\n"
               'repro_lat{quantile="0.99"} 0.5\n')
        with pytest.raises(ExpositionError, match="quantile"):
            parse_exposition(doc)

    def test_rejects_histogram_without_sum_count(self):
        doc = ("# HELP repro_h H.\n"
               "# TYPE repro_h histogram\n"
               'repro_h_bucket{le="+Inf"} 2\n')
        with pytest.raises(ExpositionError, match="_sum/_count"):
            parse_exposition(doc)

    def test_rejects_non_cumulative_buckets(self):
        doc = ("# HELP repro_h H.\n"
               "# TYPE repro_h histogram\n"
               'repro_h_bucket{le="0.1"} 5\n'
               'repro_h_bucket{le="+Inf"} 2\n'
               "repro_h_sum 1\n"
               "repro_h_count 2\n")
        with pytest.raises(ExpositionError, match="cumulative"):
            parse_exposition(doc)

    def test_rejects_inf_bucket_count_mismatch(self):
        doc = ("# HELP repro_h H.\n"
               "# TYPE repro_h histogram\n"
               'repro_h_bucket{le="+Inf"} 2\n'
               "repro_h_sum 1\n"
               "repro_h_count 3\n")
        with pytest.raises(ExpositionError, match="_count"):
            parse_exposition(doc)

    def test_rejects_duplicate_series(self):
        doc = ("# HELP repro_x_total X.\n"
               "# TYPE repro_x_total counter\n"
               "repro_x_total 1\n"
               "repro_x_total 2\n")
        with pytest.raises(ExpositionError, match="duplicate"):
            parse_exposition(doc)

    def test_rejects_interleaved_families(self):
        doc = ("# HELP repro_a A.\n# TYPE repro_a gauge\n"
               "# HELP repro_b B.\n# TYPE repro_b gauge\n"
               'repro_a{k="1"} 1\n'
               'repro_b{k="1"} 1\n'
               'repro_a{k="2"} 1\n')
        with pytest.raises(ExpositionError, match="interleaved"):
            parse_exposition(doc)

    def test_rejects_negative_counter(self):
        doc = ("# HELP repro_x_total X.\n"
               "# TYPE repro_x_total counter\n"
               "repro_x_total -1\n")
        with pytest.raises(ExpositionError, match="invalid value"):
            parse_exposition(doc)

    def test_rejects_missing_trailing_newline(self):
        with pytest.raises(ExpositionError, match="newline"):
            parse_exposition("# HELP repro_a A.\n# TYPE repro_a gauge\n"
                             "repro_a 1")

    def test_accepts_inf_and_nan_values(self):
        doc = ("# HELP repro_g G.\n# TYPE repro_g gauge\n"
               "repro_g +Inf\n")
        families = parse_exposition(doc)
        ((_n, _l, value),) = families["repro_g"]["samples"]
        assert value == math.inf


class TestCLIValidator:
    def _run(self, path: Path):
        return subprocess.run(
            [sys.executable, "-m", "repro.obs.registry", str(path)],
            capture_output=True, text=True,
            env={"PYTHONPATH": str(ROOT / "src")})

    def test_valid_document_exits_zero(self, tmp_path):
        doc = tmp_path / "metrics.prom"
        doc.write_text(_sample_registry().render_prometheus())
        proc = self._run(doc)
        assert proc.returncode == 0, proc.stderr
        assert "OK" in proc.stdout

    def test_invalid_document_exits_one(self, tmp_path):
        doc = tmp_path / "metrics.prom"
        doc.write_text("repro_x_total 1\n")
        proc = self._run(doc)
        assert proc.returncode == 1
        assert "INVALID" in proc.stderr
