"""Unit and property tests for HDFS block splitting."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.hdfs.blocks import MB, PAPER_BLOCK_SIZES_MB, Block, split_input


class TestBlock:
    def test_block_id(self):
        assert Block("f", 3, 100).block_id == "f#3"

    def test_locality(self):
        block = Block("f", 0, 100, ("n0", "n1"))
        assert block.is_local_to("n0")
        assert not block.is_local_to("n2")

    def test_with_replicas(self):
        block = Block("f", 0, 100).with_replicas(["a", "b"])
        assert block.replicas == ("a", "b")

    def test_validation(self):
        with pytest.raises(ValueError):
            Block("f", -1, 100)
        with pytest.raises(ValueError):
            Block("f", 0, -5)


class TestSplitInput:
    def test_paper_block_sizes(self):
        assert PAPER_BLOCK_SIZES_MB == (32, 64, 128, 256, 512)

    def test_exact_division(self):
        blocks = split_input("f", 4 * 64 * MB, 64 * MB)
        assert len(blocks) == 4
        assert all(b.size_bytes == 64 * MB for b in blocks)

    def test_tail_block_short(self):
        blocks = split_input("f", 100 * MB, 64 * MB)
        assert len(blocks) == 2
        assert blocks[-1].size_bytes == pytest.approx(36 * MB)

    def test_empty_input(self):
        assert split_input("f", 0, 64 * MB) == []

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            split_input("f", -1, 64 * MB)
        with pytest.raises(ValueError):
            split_input("f", 100, 0)

    @given(st.floats(min_value=1, max_value=1e12),
           st.sampled_from(PAPER_BLOCK_SIZES_MB))
    def test_paper_law_num_maps(self, total, block_mb):
        """num_maps = ceil(input / block size) — §3.1.1."""
        blocks = split_input("f", total, block_mb * MB)
        assert len(blocks) == math.ceil(total / (block_mb * MB))

    @given(st.floats(min_value=1, max_value=1e11),
           st.floats(min_value=1e7, max_value=1e9))
    def test_sizes_conserve_total(self, total, block_size):
        blocks = split_input("f", total, block_size)
        assert sum(b.size_bytes for b in blocks) == pytest.approx(total)

    @given(st.floats(min_value=1, max_value=1e11),
           st.floats(min_value=1e7, max_value=1e9))
    def test_indices_sequential(self, total, block_size):
        blocks = split_input("f", total, block_size)
        assert [b.index for b in blocks] == list(range(len(blocks)))

    @given(st.floats(min_value=1, max_value=1e11),
           st.floats(min_value=1e7, max_value=1e9))
    def test_only_tail_may_be_short(self, total, block_size):
        blocks = split_input("f", total, block_size)
        for block in blocks[:-1]:
            assert block.size_bytes == pytest.approx(block_size)
