"""`repro.obs.reqtrace` + `repro.obs.slog`: traces, ring, correlation.

The request-trace model is exercised with fake clocks so span windows
and ring eviction are exact; the context-propagation tests use real
asyncio tasks because following task switches is the property that
matters.  The structured logger is tested through a StringIO sink.
"""

from __future__ import annotations

import asyncio
import io
import json

import pytest

from repro.obs import reqtrace, slog
from repro.obs.reqtrace import (RequestTelemetry, RequestTrace,
                                chrome_json, chrome_trace)
from repro.obs.slog import StructuredLog


class _FakeClock:
    def __init__(self, start=100.0):
        self.now = start

    def __call__(self):
        return self.now

    def tick(self, dt):
        self.now += dt
        return self.now


def _telemetry(ring=4):
    return RequestTelemetry(ring=ring, clock=_FakeClock(),
                            wall=lambda: 1700000000.0)


class TestRequestTrace:
    def test_ids_are_sequential_and_share_the_process_token(self):
        tel = _telemetry()
        a = tel.start("/simulate", "POST")
        b = tel.start("/compare", "POST")
        assert a.id != b.id
        assert a.id.split("-")[0] == b.id.split("-")[0] == tel.token
        assert a.id.endswith("-000001") and b.id.endswith("-000002")

    def test_spans_and_phase_totals(self):
        tel = _telemetry()
        trace = tel.start("/simulate")
        trace.add_span("queue.wait", 100.0, 100.25)
        trace.add_span("pool.execute", 100.25, 100.75, batch=3)
        trace.add_span("queue.wait", 101.0, 101.1)
        assert trace.phase_s("queue.wait") == pytest.approx(0.35)
        assert trace.phase_s("pool.execute") == pytest.approx(0.5)
        assert trace.phase_s("nope") == 0.0

    def test_to_dict_offsets_relative_to_start(self):
        tel = _telemetry()
        trace = tel.start("/simulate", "POST")
        trace.add_span("cache.get", 100.5, 100.6, hit=False)
        tel.clock.tick(2.0)
        tel.finish(trace, 200)
        doc = trace.to_dict()
        assert doc["status"] == 200
        assert doc["duration_s"] == pytest.approx(2.0)
        (span,) = doc["spans"]
        assert span["name"] == "cache.get"
        assert span["offset_s"] == pytest.approx(0.5)
        assert span["duration_s"] == pytest.approx(0.1)
        assert span["meta"] == {"hit": False}

    def test_span_context_manager_records_window(self):
        tel = RequestTelemetry(ring=4)
        trace = tel.start("/x")
        with trace.span("route", handler="simulate"):
            pass
        (rec,) = trace.spans
        assert rec.name == "route"
        assert rec.end >= rec.start
        assert rec.meta == {"handler": "simulate"}


class TestRing:
    def test_eviction_is_fifo_and_counted(self):
        tel = _telemetry(ring=3)
        traces = [tel.start(f"/r{i}") for i in range(5)]
        for trace in traces:
            tel.finish(trace, 200)
        assert tel.completed == 5
        assert tel.evicted == 2
        kept = [t.id for t in tel.recent()]
        assert kept == [traces[4].id, traces[3].id, traces[2].id]
        assert tel.get(traces[0].id) is None
        assert tel.get(traces[4].id) is traces[4]

    def test_recent_limit_and_inflight_ordering(self):
        tel = _telemetry(ring=8)
        first = tel.start("/a")
        tel.clock.tick(1.0)
        second = tel.start("/b")
        assert [t.id for t in tel.inflight()] == [first.id, second.id]
        tel.finish(second, 200)
        tel.finish(first, 200)
        assert [t.id for t in tel.recent(1)] == [first.id]
        assert tel.inflight() == []

    def test_ring_must_hold_at_least_one(self):
        with pytest.raises(ValueError):
            RequestTelemetry(ring=0)


class TestContextPropagation:
    def test_push_pop_and_use(self):
        tel = _telemetry()
        trace = tel.start("/x")
        assert reqtrace.current() is None
        token = reqtrace.push(trace)
        assert reqtrace.current() is trace
        reqtrace.pop(token)
        assert reqtrace.current() is None
        with reqtrace.use(trace):
            assert reqtrace.current() is trace
        assert reqtrace.current() is None

    def test_module_span_helper_is_noop_without_trace(self):
        with reqtrace.span("anything") as rec:
            assert rec is None

    def test_follows_asyncio_tasks(self):
        tel = _telemetry()

        async def handler(route):
            trace = tel.start(route)
            with reqtrace.use(trace):
                await asyncio.sleep(0)        # force interleaving
                with reqtrace.span("work"):
                    await asyncio.sleep(0)
                return reqtrace.current().id, trace.id

        async def main():
            return await asyncio.gather(*(handler(f"/r{i}")
                                          for i in range(8)))

        for seen_id, own_id in asyncio.run(main()):
            assert seen_id == own_id


class TestChromeExport:
    def _finished(self, tel, route, spans):
        trace = tel.start(route, "POST")
        for name, start, end in spans:
            trace.add_span(name, start, end)
        tel.clock.tick(1.0)
        tel.finish(trace, 200)
        return trace

    def test_export_shape_and_rebased_timestamps(self):
        tel = _telemetry()
        a = self._finished(tel, "/simulate",
                           [("queue.wait", 100.0, 100.5)])
        b = self._finished(tel, "/compare", [])
        doc = chrome_trace([a, b])
        events = doc["traceEvents"]
        metas = [e for e in events if e["ph"] == "M"]
        assert metas[0]["name"] == "process_name"
        assert len([e for e in metas if e["name"] == "thread_name"]) == 2
        xs = [e for e in events if e["ph"] == "X"]
        assert min(e["ts"] for e in xs) == 0.0
        request_events = [e for e in xs if e["cat"] == "request"]
        assert {e["name"] for e in request_events} == {
            "POST /simulate", "POST /compare"}
        (span_event,) = [e for e in xs if e["cat"] == "phase"]
        assert span_event["name"] == "queue.wait"
        assert span_event["dur"] == pytest.approx(0.5e6)

    def test_json_form_is_canonical_and_pure(self):
        tel = _telemetry()
        trace = self._finished(tel, "/simulate",
                               [("route", 100.0, 100.2)])
        one = chrome_json([trace])
        two = chrome_json([trace])
        assert one == two
        json.loads(one)

    def test_empty_batch_still_valid(self):
        doc = chrome_trace([])
        assert doc["traceEvents"][0]["name"] == "process_name"


class TestStructuredLog:
    def test_one_sorted_json_line_per_event(self):
        sink = io.StringIO()
        log = StructuredLog(sink, clock=lambda: 123.456)
        log.log("serve.start", port=8008, host="127.0.0.1")
        (line,) = sink.getvalue().splitlines()
        assert json.loads(line) == {"event": "serve.start", "ts": 123.456,
                                    "host": "127.0.0.1", "port": 8008}
        assert line.index('"event"') < line.index('"host"') \
            < line.index('"port"') < line.index('"ts"')
        assert log.lines == 1

    def test_injects_request_id_from_current_trace(self):
        tel = _telemetry()
        trace = tel.start("/simulate")
        sink = io.StringIO()
        log = StructuredLog(sink, clock=lambda: 1.0)
        with reqtrace.use(trace):
            log.log("request.shed", route="/simulate")
        log.log("loadtest.end")
        shed, end = [json.loads(l) for l in sink.getvalue().splitlines()]
        assert shed["request_id"] == trace.id
        assert "request_id" not in end

    def test_file_sink_appends_and_closes(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = StructuredLog(str(path), clock=lambda: 1.0)
        log.log("a")
        log.close()
        log2 = StructuredLog(str(path), clock=lambda: 2.0)
        log2.log("b")
        log2.close()
        events = [json.loads(l)["event"]
                  for l in path.read_text().splitlines()]
        assert events == ["a", "b"]

    def test_emit_is_noop_until_installed(self):
        assert slog.ACTIVE is None
        slog.emit("ignored", x=1)          # must not raise
        sink = io.StringIO()
        log = slog.install(sink=sink)
        try:
            slog.emit("seen")
        finally:
            assert slog.uninstall() is log
        assert json.loads(sink.getvalue())["event"] == "seen"
        slog.emit("ignored.again")
        assert sink.getvalue().count("\n") == 1
