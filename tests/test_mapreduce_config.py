"""Unit tests for the Hadoop job configuration."""

from __future__ import annotations

import pytest

from repro.mapreduce.config import DEFAULT_CONF, MB, JobConf


class TestDefaults:
    def test_default_block_size(self):
        assert DEFAULT_CONF.block_size_mb == pytest.approx(128.0)

    def test_default_slots_model_yarn_memory(self):
        assert DEFAULT_CONF.map_slots_per_node == 4

    def test_immutable(self):
        with pytest.raises(Exception):
            DEFAULT_CONF.block_size_bytes = 1


class TestOverrides:
    def test_with_block_size(self):
        conf = DEFAULT_CONF.with_block_size_mb(256)
        assert conf.block_size_bytes == 256 * MB
        assert DEFAULT_CONF.block_size_mb == pytest.approx(128.0)

    def test_override_multiple(self):
        conf = DEFAULT_CONF.override(replication=1, heartbeat_s=0.0)
        assert conf.replication == 1
        assert conf.heartbeat_s == 0.0


class TestValidation:
    @pytest.mark.parametrize("field,value", [
        ("block_size_bytes", 0),
        ("io_sort_bytes", -1),
        ("merge_memory_bytes", 0),
        ("merge_factor", 1),
        ("replication", 0),
        ("chunk_bytes", 0),
        ("heartbeat_s", -0.1),
        ("task_startup_instructions", -1),
        ("job_setup_instructions", -1),
        ("job_cleanup_instructions", -1),
        ("map_slots_per_node", 0),
        ("reduce_slots_per_node", 0),
    ])
    def test_rejects_bad_values(self, field, value):
        with pytest.raises(ValueError):
            DEFAULT_CONF.override(**{field: value})

    def test_none_slots_allowed(self):
        conf = DEFAULT_CONF.override(map_slots_per_node=None,
                                     reduce_slots_per_node=None)
        assert conf.map_slots_per_node is None
