"""Cross-layer integration tests.

These tie the functional layer (real map/reduce code on real records) to
the performance layer (the simulator's data-flow ratios), and exercise
whole-pipeline paths that no unit test covers.
"""

from __future__ import annotations

import pytest

from repro.arch.meter import WattsUpMeter
from repro.arch.presets import ATOM_C2758, XEON_E5_2420
from repro.cluster.server import Cluster
from repro.core.characterization import RunKey
from repro.mapreduce.config import DEFAULT_CONF
from repro.mapreduce.driver import HadoopJobRunner
from repro.mapreduce.functional import LocalRuntime
from repro.sim.engine import Simulator
from repro.workloads.base import workload
from repro.workloads.datagen import generate_text_lines
from repro.workloads.wordcount import wordcount_job


class TestFunctionalVsPerformanceModel:
    def test_wordcount_selectivity_direction(self):
        """The functional combiner really shrinks map output, which is
        what the performance model's map_output_ratio < 1 encodes."""
        lines = generate_text_lines(300, seed=21)
        records = [(i, l) for i, l in enumerate(lines)]
        _out, stats = LocalRuntime(num_mappers=4).run(wordcount_job(),
                                                      records)
        spec_ratio = workload("wordcount").stages[0].map_output_ratio
        assert spec_ratio < 1.0
        assert stats.combine_output_records < stats.map_output_records

    def test_sort_moves_everything(self):
        """Sort's spec says map_output_ratio == 1; functional Sort indeed
        emits one output record per input record."""
        from repro.workloads.datagen import generate_records
        from repro.workloads.sort import sort_job
        records = generate_records(100, seed=22)
        out, stats = LocalRuntime().run(sort_job(), records)
        assert stats.map_selectivity == pytest.approx(1.0)
        assert workload("sort").stages[0].map_output_ratio == 1.0


class TestMeterAgainstIntegrator:
    def test_sampled_power_matches_exact_energy(self):
        """The 1 Hz wall meter and the exact integrator must agree."""
        sim = Simulator()
        cluster = Cluster.homogeneous(sim, XEON_E5_2420, 3, 1.8)
        runner = HadoopJobRunner(cluster, workload("wordcount"),
                                 DEFAULT_CONF, 2 ** 30)
        result = runner.run()
        meter = WattsUpMeter(cluster.node_power(), sample_interval=0.25)
        sampled = meter.dynamic_power(cluster.trace)
        assert sampled == pytest.approx(result.dynamic_power_w, rel=0.10)

    def test_meter_idle_floor_is_cluster_sum(self):
        sim = Simulator()
        cluster = Cluster.homogeneous(sim, ATOM_C2758, 3, 1.8)
        meter = WattsUpMeter(cluster.node_power())
        assert meter.idle_watts == pytest.approx(
            3 * ATOM_C2758.power.base_watts)


class TestHeterogeneousCluster:
    def test_mixed_cluster_runs_a_job(self):
        """A big+little cluster executes end to end (the §3.5 setting)."""
        sim = Simulator()
        cluster = Cluster.heterogeneous(sim, [
            {"spec": XEON_E5_2420, "n_nodes": 1, "freq_ghz": 1.8},
            {"spec": ATOM_C2758, "n_nodes": 2, "freq_ghz": 1.8},
        ])
        runner = HadoopJobRunner(cluster, workload("wordcount"),
                                 DEFAULT_CONF, 2 ** 30)
        result = runner.run()
        assert result.execution_time_s > 0
        # Both machine types did map work.
        nodes_used = {iv.node for iv in cluster.trace.filter(phase="map")}
        assert any(n.startswith("xeon") for n in nodes_used)
        assert any(n.startswith("atom") for n in nodes_used)

    def test_mixed_cluster_slower_than_all_big(self, characterizer):
        xeon = characterizer.run(RunKey("xeon", "wordcount"))
        sim = Simulator()
        cluster = Cluster.heterogeneous(sim, [
            {"spec": XEON_E5_2420, "n_nodes": 1, "freq_ghz": 1.8},
            {"spec": ATOM_C2758, "n_nodes": 2, "freq_ghz": 1.8},
        ])
        runner = HadoopJobRunner(cluster, workload("wordcount"),
                                 DEFAULT_CONF, 2 ** 30)
        mixed = runner.run()
        assert mixed.execution_time_s > xeon.execution_time_s


class TestEnergyConservation:
    def test_phase_energy_sums_to_total(self, characterizer):
        for wl in ("wordcount", "terasort"):
            r = characterizer.run(RunKey("xeon", wl))
            parts = sum(r.energy.by_phase.values())
            assert parts == pytest.approx(r.dynamic_energy_j, rel=1e-9)

    def test_device_energy_sums_to_total(self, characterizer):
        r = characterizer.run(RunKey("atom", "grep"))
        parts = sum(r.energy.by_device.values())
        assert parts == pytest.approx(r.dynamic_energy_j, rel=1e-9)

    def test_node_energy_roughly_balanced(self, characterizer):
        """With balanced placement no node should dominate energy."""
        r = characterizer.run(RunKey("xeon", "wordcount"))
        by_node = r.energy.by_node
        values = sorted(by_node.values())
        assert values[-1] < 2.0 * values[0]
