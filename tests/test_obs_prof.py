"""Tests for the wall-clock phase profiler and its histogram."""

from __future__ import annotations

import threading

import pytest

from repro.mapreduce.driver import simulate_job
from repro.obs import prof
from repro.obs.metrics import LogHistogram
from repro.obs.prof import PhaseStat, Profiler
from repro.sim.engine import Simulator


@pytest.fixture(autouse=True)
def _no_leaked_profiler():
    """Every test starts and ends with profiling off."""
    assert prof.ACTIVE is None
    yield
    prof.uninstall()


class FakeClock:
    """Deterministic monotonic clock for timing-free profiler tests."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


class TestLogHistogram:
    def test_percentiles_bracket_recorded_values(self):
        h = LogHistogram()
        for ms in (1, 2, 3, 4, 100):
            h.record(ms * 1e-3)
        assert h.total == 5
        assert h.min == 1e-3 and h.max == 0.1
        # p50 lands in the 3ms bucket (±19% quantization), p99 on the max.
        assert h.percentile(50.0) == pytest.approx(3e-3, rel=0.25)
        assert h.percentile(99.0) == pytest.approx(0.1, rel=0.25)
        # Quantiles are clamped to the exact recorded range.
        assert h.min <= h.percentile(1.0) <= h.percentile(100.0) <= h.max

    def test_out_of_range_values_clamp_to_edge_buckets(self):
        h = LogHistogram()
        h.record(1e-12)   # below MIN_VALUE
        h.record(1e9)     # beyond the last bucket
        assert h.counts[0] == 1 and h.counts[-1] == 1
        assert h.min == 1e-12 and h.max == 1e9

    def test_empty_and_invalid(self):
        h = LogHistogram()
        assert h.percentile(50.0) == 0.0
        with pytest.raises(ValueError):
            h.percentile(0.0)
        with pytest.raises(ValueError):
            h.percentile(101.0)
        h.record(1.0, count=0)  # non-positive counts are ignored
        assert h.total == 0

    def test_merge(self):
        a, b = LogHistogram(), LogHistogram()
        a.record(1e-3, 10)
        b.record(1e-1, 5)
        a.merge(b)
        assert a.total == 15
        assert a.min == 1e-3 and a.max == 1e-1

    def test_to_dict_buckets_are_sparse(self):
        h = LogHistogram()
        h.record(5e-4, 7)
        d = h.to_dict()
        assert d["total"] == 7
        assert list(d["buckets"].values()) == [7]


class TestPhaseStat:
    def test_batched_record_attributes_mean_latency(self):
        stat = PhaseStat("engine.dispatch")
        stat.record(0.256, calls=256)   # 1ms mean per call
        assert stat.calls == 256
        assert stat.total_s == pytest.approx(0.256)
        assert stat.mean_s == pytest.approx(1e-3)
        assert stat.percentile(50.0) == pytest.approx(1e-3, rel=0.25)

    def test_to_dict_shape(self):
        stat = PhaseStat("x")
        stat.record(0.5)
        d = stat.to_dict()
        assert set(d) == {"calls", "total_s", "mean_s", "min_s", "max_s",
                          "p50_s", "p95_s", "p99_s"}


class TestProfiler:
    def test_phase_context_manager_uses_injected_clock(self):
        clock = FakeClock()
        p = Profiler(clock=clock)
        with p.phase("work"):
            clock.advance(2.5)
        stat = p.get("work")
        assert stat.calls == 1 and stat.total_s == pytest.approx(2.5)

    def test_to_dict_orders_phases_by_total_desc(self):
        p = Profiler()
        p.record("small", 0.1)
        p.record("big", 5.0)
        assert list(p.to_dict()["phases"]) == ["big", "small"]

    def test_merge_folds_phases_and_meta(self):
        a, b = Profiler(), Profiler()
        a.record("x", 1.0)
        a.count("n", 2)
        b.record("x", 3.0, calls=2)
        b.count("n", 5)
        a.merge(b)
        assert a.get("x").calls == 3
        assert a.get("x").total_s == pytest.approx(4.0)
        assert a.meta["n"] == 7

    def test_thread_safe_recording(self):
        p = Profiler()

        def worker():
            for _ in range(500):
                p.record("shared", 1e-6)
                p.count("hits")

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert p.get("shared").calls == 2000
        assert p.meta["hits"] == 2000

    def test_render_lists_hottest_first(self):
        p = Profiler()
        p.record("cool", 0.001)
        p.record("hot", 9.0)
        lines = p.render().splitlines()
        assert "hot" in lines[1] and "cool" in lines[2]


class TestModuleApi:
    def test_phase_is_noop_when_inactive(self):
        with prof.phase("nothing") as handle:
            assert handle is None
        assert prof.ACTIVE is None

    def test_profiled_restores_previous_handle(self):
        outer = prof.install()
        with prof.profiled() as inner:
            assert prof.ACTIVE is inner and inner is not outer
        assert prof.ACTIVE is outer
        prof.uninstall()
        assert prof.ACTIVE is None

    def test_profile_calls_decorator(self):
        @prof.profile_calls("custom.name")
        def work(x):
            return x * 2

        assert work(3) == 6          # unprofiled: plain passthrough
        with prof.profiled() as p:
            assert work(4) == 8
        assert p.get("custom.name").calls == 1

    def test_profile_calls_default_name(self):
        @prof.profile_calls()
        def helper():
            return 1

        with prof.profiled() as p:
            helper()
        [name] = p.phases
        assert name.endswith(".helper")


class TestInstrumentation:
    def test_engine_profiled_twin_matches_unprofiled_run(self):
        def worker(sim):
            for _ in range(5):
                yield sim.timeout(1.0)

        plain = Simulator()
        plain.process(worker(plain))
        plain.run()

        profiled_sim = Simulator()
        profiled_sim.process(worker(profiled_sim))
        with prof.profiled() as p:
            profiled_sim.run()
        assert profiled_sim.now == plain.now
        assert profiled_sim.event_count == plain.event_count
        assert p.get("engine.run").calls == 1
        assert p.get("engine.dispatch").calls == profiled_sim.event_count
        assert p.meta["engine.events"] == profiled_sim.event_count

    def test_simulate_job_records_expected_phases(self):
        with prof.profiled() as p:
            result = simulate_job("atom", "wordcount",
                                  data_per_node_gb=0.0625)
        assert result.execution_time_s > 0
        names = set(p.phases)
        for expected in ("engine.run", "engine.dispatch", "driver.run",
                         "driver.stage.map", "driver.stage.reduce",
                         "hdfs.load_input", "hdfs.place_block"):
            assert expected in names, f"missing phase {expected}"

    def test_profiling_never_changes_results(self):
        baseline = simulate_job("atom", "terasort", data_per_node_gb=0.125)
        with prof.profiled():
            profiled = simulate_job("atom", "terasort",
                                    data_per_node_gb=0.125)
        assert profiled.execution_time_s == baseline.execution_time_s
        assert profiled.dynamic_energy_j == baseline.dynamic_energy_j
        assert profiled.counters == baseline.counters
