"""Smoke tests for the experiment drivers (full runs live in benchmarks/)."""

from __future__ import annotations

import pytest

from repro.analysis.experiments import (ALL_EXPERIMENTS, fig1_ipc,
                                        fig9_edp_ratio_block,
                                        scheduling_case_study)


class TestRegistry:
    def test_every_paper_artifact_has_a_driver(self):
        paper = {f"F{i}" for i in range(1, 18)} | {"T3", "S1"}
        extensions = {"X1", "X2", "FT", "DC"}
        assert set(ALL_EXPERIMENTS) == paper | extensions

    def test_drivers_documented(self):
        for exp_id, fn in ALL_EXPERIMENTS.items():
            assert fn.__doc__, exp_id


class TestDrivers:
    def test_fig1_structure(self, characterizer):
        exp = fig1_ipc(characterizer)
        assert exp.exp_id == "F1"
        ipc = exp.data["ipc"]
        for label in ("Avg_Spec", "Avg_Parsec", "Avg_Hadoop"):
            assert ipc[(label, "xeon")] > ipc[(label, "atom")]
        text = exp.render()
        assert "F1" in text and "Avg_Hadoop" in text

    def test_fig9_series_cover_all_apps(self, characterizer):
        exp = fig9_edp_ratio_block(characterizer)
        assert set(exp.data["series"]) == {
            "wordcount", "sort", "grep", "terasort", "naive_bayes",
            "fp_growth"}

    def test_scheduling_case_study(self, characterizer):
        exp = scheduling_case_study(characterizer, goal="EDP")
        reports = exp.data["reports"]
        assert reports["exhaustive-oracle"].mean_regret == pytest.approx(1.0)
        assert reports["paper-heuristic"].mean_regret < reports[
            "little-first"].mean_regret

    def test_render_has_header_and_sections(self, characterizer):
        exp = fig1_ipc(characterizer)
        rendered = exp.render()
        assert rendered.startswith("== F1")
        assert len(exp.sections) >= 1
