"""Cache correctness: fresh vs cached results, invalidation, failures.

The persistent cache must be invisible except for speed — a cached cell
must equal a freshly simulated one field-for-field, the cache must go
cold when the model fingerprint changes, and a failing cell must report
its coordinates rather than a bare worker traceback.
"""

from __future__ import annotations

import pickle

import pytest

from repro.analysis.executor import (CACHE_FORMAT, CellError, ResultCache,
                                     cache_key, default_cache_dir,
                                     model_fingerprint, resolve_jobs,
                                     run_cells)
from repro.core.characterization import Characterizer, RunKey, simulate_cell
from repro.mapreduce.config import DEFAULT_CONF

#: Small cells keep these tests fast; determinism does not depend on size.
KEY = RunKey("atom", "wordcount", data_per_node_gb=0.25)
KEY2 = RunKey("xeon", "wordcount", freq_ghz=1.2, data_per_node_gb=0.25)


@pytest.fixture()
def cache(tmp_path) -> ResultCache:
    return ResultCache(tmp_path)


class TestCacheKey:
    def test_stable_for_equal_inputs(self):
        assert cache_key(KEY) == cache_key(RunKey("atom", "wordcount",
                                                  data_per_node_gb=0.25))

    def test_differs_per_runkey_field(self):
        assert cache_key(KEY) != cache_key(KEY2)
        assert cache_key(KEY) != cache_key(
            RunKey("atom", "wordcount", data_per_node_gb=0.25, n_nodes=4))

    def test_differs_per_conf(self):
        other = DEFAULT_CONF.override(replication=2)
        assert cache_key(KEY, DEFAULT_CONF) != cache_key(KEY, other)

    def test_fingerprint_is_stable_and_hex(self):
        fp = model_fingerprint()
        assert fp == model_fingerprint()
        assert len(fp) == 64 and int(fp, 16) >= 0


class TestResultCache:
    def test_fresh_and_cached_results_identical(self, cache):
        fresh = simulate_cell(KEY)
        cache.put(KEY, DEFAULT_CONF, fresh)
        cached = cache.get(KEY, DEFAULT_CONF)
        assert cached == fresh  # dataclass deep equality, every field
        assert pickle.dumps(cached) == pickle.dumps(fresh)

    def test_miss_on_empty(self, cache):
        assert cache.get(KEY) is None
        assert cache.misses == 1 and cache.hits == 0

    def test_fingerprint_change_invalidates(self, cache, tmp_path):
        cache.put(KEY, DEFAULT_CONF, simulate_cell(KEY))
        stale = ResultCache(tmp_path, fingerprint="0" * 64)
        assert stale.get(KEY) is None
        # The entry itself is still on disk under the old namespace.
        assert cache.stats().entries == 1
        assert stale.stats().stale_entries == 1

    def test_corrupt_entry_is_a_miss(self, cache):
        cache.put(KEY, DEFAULT_CONF, simulate_cell(KEY))
        entry = cache._entry(KEY, DEFAULT_CONF)
        entry.write_bytes(b"not a pickle")
        assert cache.get(KEY) is None
        assert not entry.exists()  # dropped, will be re-simulated
        assert cache.corrupt == 1 and cache.misses == 1

    def test_wrong_type_pickle_is_dropped(self, cache):
        # A readable pickle that is not a JobResult (foreign writer,
        # stale schema) must never masquerade as a cell result.
        entry = cache._entry(KEY, DEFAULT_CONF)
        entry.parent.mkdir(parents=True, exist_ok=True)
        entry.write_bytes(pickle.dumps({"execution_time_s": 1.0}))
        assert cache.get(KEY) is None
        assert not entry.exists()
        assert cache.corrupt == 1

    def test_corrupt_entry_is_rewritten_on_next_put(self, cache):
        fresh = simulate_cell(KEY)
        entry = cache._entry(KEY, DEFAULT_CONF)
        entry.parent.mkdir(parents=True, exist_ok=True)
        entry.write_bytes(b"\x80garbage")
        assert cache.get(KEY) is None
        cache.put(KEY, DEFAULT_CONF, fresh)
        assert cache.get(KEY) == fresh

    def test_put_leaves_no_tmp_files_behind(self, cache):
        cache.put(KEY, DEFAULT_CONF, simulate_cell(KEY))
        cache.put(KEY, DEFAULT_CONF, simulate_cell(KEY))  # overwrite path
        assert list(cache.path.rglob("*.tmp")) == []
        assert cache.stats().entries == 1

    def test_reap_orphans_deletes_only_aged_tmp_files(self, cache):
        import os
        cache.put(KEY, DEFAULT_CONF, simulate_cell(KEY))
        bucket = cache._bucket
        old = bucket / "dead-writer.tmp"
        old.write_bytes(b"partial")
        os.utime(old, (1, 1))                      # ancient mtime
        fresh = bucket / "live-writer.tmp"
        fresh.write_bytes(b"partial")              # now-ish mtime
        assert cache.reap_orphans(max_age_s=300.0) == 1
        assert not old.exists() and fresh.exists()
        assert cache.get(KEY) is not None          # entries untouched

    def test_reap_orphans_on_missing_dir_is_noop(self, tmp_path):
        cache = ResultCache(tmp_path / "never-created")
        assert cache.reap_orphans() == 0

    def test_clear(self, cache):
        result = simulate_cell(KEY)
        cache.put(KEY, DEFAULT_CONF, result)
        stale = ResultCache(cache.path, fingerprint="0" * 64)
        stale.put(KEY, DEFAULT_CONF, result)
        assert cache.clear(stale_only=True) == 1
        assert cache.stats().entries == 1
        assert cache.clear() == 1
        assert cache.stats().entries == 0

    def test_default_dir_honors_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "c"))
        assert default_cache_dir() == tmp_path / "c"


class TestRunCells:
    def test_serves_hits_without_simulating(self, cache):
        first = run_cells([KEY, KEY2], cache=cache)
        assert cache.stores == 2
        warm = ResultCache(cache.path)
        second = run_cells([KEY, KEY2], cache=warm)
        assert warm.hits == 2 and warm.misses == 0 and warm.stores == 0
        assert second == first

    def test_worker_failure_reports_coordinates(self):
        bad = RunKey("atom", "no_such_workload", freq_ghz=1.4)
        with pytest.raises(CellError) as err:
            run_cells([bad])
        assert err.value.key == bad
        assert "no_such_workload" in str(err.value)
        assert "1.4" in str(err.value)

    def test_worker_failure_in_pool_reports_coordinates(self):
        bad = RunKey("xeon", "also_not_a_workload")
        with pytest.raises(CellError) as err:
            run_cells([RunKey("atom", "wordcount", data_per_node_gb=0.25),
                       bad, KEY2], jobs=2)
        assert err.value.key == bad

    def test_duplicates_collapsed(self):
        results = run_cells([KEY, KEY, KEY2])
        assert list(results) == [KEY, KEY2]


class TestCharacterizerIntegration:
    def test_run_uses_disk_cache(self, tmp_path):
        ch1 = Characterizer(cache=ResultCache(tmp_path))
        fresh = ch1.run(KEY)
        ch2 = Characterizer(cache=ResultCache(tmp_path))
        cached = ch2.run(KEY)
        assert cached == fresh
        assert ch2.disk_cache.hits == 1 and ch2.disk_cache.misses == 0

    def test_run_many_matches_run(self, tmp_path):
        ch = Characterizer(cache=ResultCache(tmp_path))
        batch = ch.run_many([KEY, KEY2])
        assert batch == [ch.run(KEY), ch.run(KEY2)]


class TestResolveJobs:
    def test_explicit(self):
        assert resolve_jobs(3) == 3

    def test_zero_means_cpu_count(self):
        assert resolve_jobs(0) >= 1

    def test_none_reads_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs(None) == 5
        monkeypatch.delenv("REPRO_JOBS")
        assert resolve_jobs(None) == 1
