"""Documentation invariants: link integrity and architecture coverage.

These keep the docs honest in CI: every intra-repo markdown link must
resolve, `docs/ARCHITECTURE.md` must mention every `src/repro`
subpackage, and MODELING.md must document the cache-key scheme.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


def _load_check_links():
    spec = importlib.util.spec_from_file_location(
        "check_links", ROOT / "tools" / "check_links.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestLinks:
    def test_no_broken_intra_repo_links(self):
        checker = _load_check_links()
        assert checker.broken_links(ROOT) == []

    def test_linter_catches_broken_link(self, tmp_path):
        (tmp_path / "bad.md").write_text("see [x](does/not/exist.md)")
        checker = _load_check_links()
        errors = checker.broken_links(tmp_path)
        assert len(errors) == 1 and "does/not/exist.md" in errors[0]

    def test_linter_allows_external_and_fragments(self, tmp_path):
        (tmp_path / "ok.md").write_text(
            "[a](https://example.com) [b](#section) [c](ok.md#frag)")
        checker = _load_check_links()
        assert checker.broken_links(tmp_path) == []


class TestArchitectureDoc:
    def test_every_subpackage_documented(self):
        text = (ROOT / "docs" / "ARCHITECTURE.md").read_text()
        packages = sorted(
            p.name for p in (ROOT / "src" / "repro").iterdir()
            if p.is_dir() and (p / "__init__.py").exists())
        assert packages  # sanity: the source tree is where we think
        missing = [pkg for pkg in packages if f"`{pkg}/`" not in text]
        assert not missing, f"ARCHITECTURE.md misses packages: {missing}"

    def test_data_flow_names_the_pipeline(self):
        text = (ROOT / "docs" / "ARCHITECTURE.md").read_text()
        for stage in ("RunKey", "Characterizer", "SweepResult",
                      "JobResult", "ResultCache"):
            assert stage in text


class TestModelingDoc:
    def test_documents_cache_scheme(self):
        text = (ROOT / "docs" / "MODELING.md").read_text()
        for needle in ("fingerprint", "cache", "RunKey", "JobConf",
                       "--no-cache", "cache clear"):
            assert needle in text, f"MODELING.md lacks {needle!r}"

    def test_readme_links_modeling_section(self):
        text = (ROOT / "README.md").read_text()
        assert "docs/MODELING.md" in text
        assert "docs/ARCHITECTURE.md" in text
        assert "--jobs" in text and "--no-cache" in text
