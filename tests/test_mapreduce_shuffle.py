"""Unit and property tests for spill/merge planning."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.mapreduce.shuffle import (MergePlan, SpillPlan, plan_reduce_merge,
                                     plan_spills)

MB = 1024 * 1024


class TestPlanSpills:
    def test_fits_in_buffer_single_spill(self):
        plan = plan_spills(50 * MB, 100 * MB, sort_ipb=8.0)
        assert plan.n_spills == 1
        assert plan.merge_rounds == 0
        assert plan.disk_write_bytes == pytest.approx(50 * MB)
        assert plan.disk_read_bytes == 0.0

    def test_overflow_triggers_merge_round(self):
        plan = plan_spills(250 * MB, 100 * MB, sort_ipb=8.0)
        assert plan.n_spills == 3
        assert plan.merge_rounds == 1
        assert plan.disk_write_bytes == pytest.approx(500 * MB)
        assert plan.disk_read_bytes == pytest.approx(250 * MB)

    def test_many_runs_need_multiple_rounds(self):
        plan = plan_spills(2500 * MB, 100 * MB, sort_ipb=8.0, merge_factor=5)
        assert plan.n_spills == 25
        assert plan.merge_rounds == 2  # 25 -> 5 -> 1

    def test_zero_output(self):
        plan = plan_spills(0.0, 100 * MB, sort_ipb=8.0)
        assert plan.n_spills == 0
        assert plan.sort_instructions == 0.0

    def test_merge_rounds_increase_sort_cpu(self):
        one = plan_spills(50 * MB, 100 * MB, sort_ipb=8.0)
        many = plan_spills(250 * MB, 100 * MB, sort_ipb=8.0)
        assert (many.sort_instructions / (250 * MB)
                > one.sort_instructions / (50 * MB))

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_spills(-1, 100, 8.0)
        with pytest.raises(ValueError):
            plan_spills(100, 0, 8.0)
        with pytest.raises(ValueError):
            plan_spills(100, 100, -1)
        with pytest.raises(ValueError):
            plan_spills(100, 100, 8.0, merge_factor=1)

    @given(st.floats(min_value=1, max_value=1e10),
           st.floats(min_value=1e6, max_value=1e9))
    def test_spill_count_law(self, out, buffer_size):
        plan = plan_spills(out, buffer_size, sort_ipb=8.0)
        assert plan.n_spills == max(1, math.ceil(out / buffer_size))

    @given(st.floats(min_value=1, max_value=1e10),
           st.floats(min_value=1e6, max_value=1e9))
    def test_disk_traffic_at_least_output(self, out, buffer_size):
        plan = plan_spills(out, buffer_size, sort_ipb=8.0)
        assert plan.disk_write_bytes >= out - 1e-6
        assert plan.disk_read_bytes >= 0

    @given(st.floats(min_value=1e6, max_value=1e10))
    def test_bigger_buffer_never_more_traffic(self, out):
        small = plan_spills(out, 64 * MB, sort_ipb=8.0)
        big = plan_spills(out, 512 * MB, sort_ipb=8.0)
        assert big.disk_write_bytes <= small.disk_write_bytes + 1e-6
        assert big.merge_rounds <= small.merge_rounds


class TestPlanReduceMerge:
    def test_in_memory_partition(self):
        plan = plan_reduce_merge(100 * MB, 140 * MB, sort_ipb=8.0)
        assert not plan.spills_to_disk
        assert plan.disk_write_bytes == 0.0

    def test_overflow_round_trips_excess(self):
        plan = plan_reduce_merge(200 * MB, 140 * MB, sort_ipb=8.0)
        assert plan.spills_to_disk
        assert plan.disk_write_bytes == pytest.approx(60 * MB)
        assert plan.disk_read_bytes == pytest.approx(60 * MB)

    def test_merge_cpu_scales_with_partition(self):
        small = plan_reduce_merge(10 * MB, 140 * MB, sort_ipb=8.0)
        big = plan_reduce_merge(100 * MB, 140 * MB, sort_ipb=8.0)
        assert big.merge_instructions == pytest.approx(
            10 * small.merge_instructions)

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_reduce_merge(-1, 140, 8.0)
        with pytest.raises(ValueError):
            plan_reduce_merge(100, 0, 8.0)
