"""Unit and property tests for the EDxP / EDxAP metric family."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.metrics import (CostPoint, ed2ap, ed2p, ed3p, edap, edp,
                                edxap, edxp, geomean, normalize, speedup)

pos = st.floats(min_value=1e-6, max_value=1e9)


class TestEdxpFamily:
    def test_edp_definition(self):
        assert edp(10.0, 3.0) == pytest.approx(30.0)

    def test_exponent_family(self):
        assert ed2p(10.0, 3.0) == pytest.approx(90.0)
        assert ed3p(10.0, 3.0) == pytest.approx(270.0)

    def test_area_weighting(self):
        assert edap(10.0, 3.0, 2.0) == pytest.approx(60.0)
        assert ed2ap(10.0, 3.0, 2.0) == pytest.approx(180.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            edxp(-1.0, 1.0)
        with pytest.raises(ValueError):
            edxp(1.0, -1.0)
        with pytest.raises(ValueError):
            edxp(1.0, 1.0, x=-1)
        with pytest.raises(ValueError):
            edxap(1.0, 1.0, 0.0)

    @given(pos, pos)
    def test_edxp_recursion(self, e, t):
        """ED^(x+1)P == ED^xP * t."""
        assert edxp(e, t, 2) == pytest.approx(edxp(e, t, 1) * t, rel=1e-9)
        assert edxp(e, t, 3) == pytest.approx(edxp(e, t, 2) * t, rel=1e-9)

    @given(pos, pos, pos)
    def test_ratio_invariance_under_area(self, e, t, a):
        """Area scaling cancels in same-area comparisons."""
        base = edxap(e, t, a) / edxap(2 * e, t, a)
        assert base == pytest.approx(0.5, rel=1e-9)


class TestHelpers:
    def test_speedup(self):
        assert speedup(10.0, 2.0) == pytest.approx(5.0)
        with pytest.raises(ValueError):
            speedup(0.0, 1.0)

    def test_geomean_known(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geomean_validation(self):
        with pytest.raises(ValueError):
            geomean([])
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    @given(st.lists(pos, min_size=1, max_size=20))
    def test_geomean_between_min_and_max(self, values):
        g = geomean(values)
        assert min(values) * (1 - 1e-9) <= g <= max(values) * (1 + 1e-9)

    @given(st.lists(pos, min_size=1, max_size=10), pos)
    def test_geomean_scales_linearly(self, values, k):
        scaled = geomean([v * k for v in values])
        assert scaled == pytest.approx(geomean(values) * k, rel=1e-6)

    def test_normalize(self):
        out = normalize({"a": 2.0, "b": 4.0}, reference="a")
        assert out == {"a": 1.0, "b": 2.0}

    def test_normalize_validation(self):
        with pytest.raises(KeyError):
            normalize({"a": 1.0}, reference="z")
        with pytest.raises(ValueError):
            normalize({"a": 0.0}, reference="a")


class TestCostPoint:
    def _point(self):
        return CostPoint("cfg", energy_j=10.0, delay_s=3.0, area_mm2=2.0)

    def test_properties(self):
        p = self._point()
        assert p.edp == pytest.approx(30.0)
        assert p.ed2p == pytest.approx(90.0)
        assert p.ed3p == pytest.approx(270.0)
        assert p.edap == pytest.approx(60.0)
        assert p.ed2ap == pytest.approx(180.0)

    def test_metric_lookup_case_insensitive(self):
        p = self._point()
        assert p.metric("edp") == p.edp
        assert p.metric("ED2AP") == p.ed2ap

    def test_unknown_metric(self):
        with pytest.raises(KeyError):
            self._point().metric("FLOPS")
