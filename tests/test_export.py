"""Tests for the CSV export utility."""

from __future__ import annotations

import csv
import io

import pytest

from repro.analysis.experiments import (fig5_edp_real, fig9_edp_ratio_block,
                                        fig14_accel_sweep)
from repro.analysis.export import (experiment_to_csv, grid_rows,
                                   records_rows, series_rows,
                                   write_experiment_csv)
from repro.core.characterization import RunKey


class TestSeriesRows:
    def test_plain_value_lists(self):
        rows = series_rows({("wc", "atom"): [1.0, 2.0]})
        assert rows == [["wc", "atom", 0, 1.0], ["wc", "atom", 1, 2.0]]

    def test_xy_tuple_payloads(self):
        rows = series_rows({"wc": ((32, 64), (1.5, 1.7))})
        assert rows == [["wc", 32, 1.5], ["wc", 64, 1.7]]

    def test_point_list_payloads(self):
        rows = series_rows({"wc": [(1, 0.9), (2, 0.8)]})
        assert rows == [["wc", 1, 0.9], ["wc", 2, 0.8]]


class TestGridRows:
    def test_flattens_job_results(self, characterizer):
        grid = {("atom", "wordcount"): characterizer.run(
            RunKey("atom", "wordcount"))}
        rows = grid_rows(grid)
        assert len(rows) == 1
        assert rows[0][:2] == ["atom", "wordcount"]
        assert rows[0][2] > 0  # execution time

    def test_rejects_non_results(self):
        with pytest.raises(TypeError):
            grid_rows({("a",): 42})


class TestExperimentExport:
    def test_series_experiment(self, characterizer):
        exp = fig14_accel_sweep(characterizer)
        payloads = experiment_to_csv(exp)
        assert "series" in payloads
        parsed = list(csv.reader(io.StringIO(payloads["series"])))
        header, rows = parsed[0], parsed[1:]
        assert header[-2:] == ["x", "y"]
        assert len(rows) > 20  # 6 workloads x 9 rates

    def test_block_series_experiment(self, characterizer):
        exp = fig9_edp_ratio_block(characterizer)
        payloads = experiment_to_csv(exp)
        assert "series" in payloads

    def test_write_to_directory(self, tmp_path, characterizer):
        exp = fig5_edp_real(characterizer)
        written = write_experiment_csv(exp, tmp_path)
        assert written
        for path in written:
            assert path.exists()
            assert path.name.startswith("F5_")
            assert len(path.read_text().splitlines()) > 1


class TestRecordsRows:
    def test_header_from_first_record(self):
        rows = records_rows([{"a": 1, "b": 2}, {"a": 3, "b": 4}])
        assert rows == [["a", "b"], [1, 2], [3, 4]]

    def test_missing_keys_become_empty_cells(self):
        rows = records_rows([{"a": 1, "b": 2}, {"a": 3}])
        assert rows[2] == [3, ""]

    def test_extra_keys_rejected(self):
        with pytest.raises(ValueError, match="record 1"):
            records_rows([{"a": 1}, {"a": 2, "sneaky": 3}])

    def test_experiment_records_payload_exports(self):
        from repro.analysis.experiments import Experiment
        exp = Experiment("T0", "records payload")
        exp.data["summary"] = [{"policy": "fifo", "edp": 1.5},
                               {"policy": "hetero", "edp": 0.9}]
        payloads = experiment_to_csv(exp)
        parsed = list(csv.reader(io.StringIO(payloads["summary"])))
        assert parsed[0] == ["policy", "edp"]
        assert parsed[1] == ["fifo", "1.5"]
        assert len(parsed) == 3
