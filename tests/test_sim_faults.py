"""Unit tests for the deterministic fault-injection plans."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.sim.faults import FaultPlan, NodeFault, unit_draw


class TestUnitDraw:
    def test_in_unit_interval(self):
        for i in range(50):
            u = unit_draw(7, "label", str(i))
            assert 0.0 <= u < 1.0

    def test_deterministic(self):
        assert unit_draw(3, "fail", "s0.m1", "0") == unit_draw(
            3, "fail", "s0.m1", "0")

    def test_seed_sensitivity(self):
        assert unit_draw(1, "fail", "t") != unit_draw(2, "fail", "t")

    def test_label_sensitivity(self):
        assert unit_draw(1, "fail", "t0") != unit_draw(1, "fail", "t1")

    @given(st.integers(min_value=0, max_value=2 ** 32),
           st.text(max_size=20))
    def test_always_in_range(self, seed, label):
        assert 0.0 <= unit_draw(seed, label) < 1.0


class TestNodeFault:
    def test_defaults_are_healthy(self):
        nf = NodeFault("atom0")
        assert nf.crash_at_s is None
        assert nf.disk_slowdown == 1.0
        assert nf.compute_slowdown == 1.0

    def test_negative_crash_time_rejected(self):
        with pytest.raises(ValueError):
            NodeFault("atom0", crash_at_s=-1.0)

    def test_sub_unity_slowdowns_rejected(self):
        with pytest.raises(ValueError):
            NodeFault("atom0", disk_slowdown=0.5)
        with pytest.raises(ValueError):
            NodeFault("atom0", compute_slowdown=0.9)


class TestFaultPlanValidation:
    def test_default_plan_is_quiet(self):
        assert FaultPlan().is_quiet

    def test_bad_probabilities_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(task_fail_prob=1.5)
        with pytest.raises(ValueError):
            FaultPlan(straggler_prob=-0.1)

    def test_bad_straggler_range_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(straggler_slowdown=(0.5, 2.0))
        with pytest.raises(ValueError):
            FaultPlan(straggler_slowdown=(4.0, 2.0))

    def test_duplicate_node_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(node_faults=(NodeFault("a0"), NodeFault("a0")))

    def test_slow_task_factor_below_one_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(slow_tasks=(("s0.m0", 0.5),))

    def test_quietness_sees_every_knob(self):
        assert not FaultPlan(task_fail_prob=0.1).is_quiet
        assert not FaultPlan(straggler_prob=0.1).is_quiet
        assert not FaultPlan(slow_tasks=(("t", 2.0),)).is_quiet
        assert not FaultPlan(
            node_faults=(NodeFault("a0", crash_at_s=5.0),)).is_quiet
        assert FaultPlan(node_faults=(NodeFault("a0"),)).is_quiet


class TestCrashRateConstructor:
    NODES = ("atom0", "atom1", "atom2")

    def test_zero_rate_is_quiet(self):
        plan = FaultPlan.with_crash_rate(5, self.NODES, 0.0)
        assert plan.node_faults == ()
        assert plan.is_quiet

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan.with_crash_rate(5, self.NODES, -1.0)

    def test_positive_rate_draws_per_node_times(self):
        plan = FaultPlan.with_crash_rate(5, self.NODES, 5.0)
        assert len(plan.node_faults) == 3
        for nf in plan.node_faults:
            assert nf.crash_at_s is not None
            assert nf.crash_at_s > 0
        assert not plan.is_quiet

    def test_deterministic_in_seed(self):
        a = FaultPlan.with_crash_rate(5, self.NODES, 5.0)
        b = FaultPlan.with_crash_rate(5, self.NODES, 5.0)
        c = FaultPlan.with_crash_rate(6, self.NODES, 5.0)
        assert a == b
        assert a != c

    def test_higher_rate_crashes_sooner(self):
        slow = FaultPlan.with_crash_rate(5, self.NODES, 1.0)
        fast = FaultPlan.with_crash_rate(5, self.NODES, 100.0)
        for s, f in zip(slow.node_faults, fast.node_faults):
            assert f.crash_at_s < s.crash_at_s

    def test_overrides_pass_through(self):
        plan = FaultPlan.with_crash_rate(5, self.NODES, 0.0,
                                         task_fail_prob=0.25)
        assert plan.task_fail_prob == 0.25


class TestPerAttemptDraws:
    def test_zero_prob_never_fails(self):
        plan = FaultPlan(seed=1, task_fail_prob=0.0)
        assert not any(plan.attempt_fails(f"t{i}", 0) for i in range(100))

    def test_unit_prob_always_fails(self):
        plan = FaultPlan(seed=1, task_fail_prob=1.0)
        assert all(plan.attempt_fails(f"t{i}", 0) for i in range(100))

    def test_draws_are_order_independent(self):
        plan = FaultPlan(seed=9, task_fail_prob=0.5)
        forward = [plan.attempt_fails("s0.m3", a) for a in range(8)]
        backward = [plan.attempt_fails("s0.m3", a) for a in reversed(range(8))]
        assert forward == list(reversed(backward))

    def test_failure_point_range(self):
        plan = FaultPlan(seed=2, task_fail_prob=1.0)
        for i in range(50):
            p = plan.failure_point(f"t{i}", 0)
            assert 0.05 <= p < 0.95

    def test_slow_tasks_hit_first_attempt_only(self):
        plan = FaultPlan(seed=0, slow_tasks=(("s0.m0", 4.0),))
        assert plan.slowdown("s0.m0", 0) == 4.0
        assert plan.slowdown("s0.m0", 1) == 1.0  # backup runs clean
        assert plan.slowdown("s0.m1", 0) == 1.0

    def test_straggler_factor_within_range(self):
        plan = FaultPlan(seed=4, straggler_prob=1.0,
                         straggler_slowdown=(2.0, 6.0))
        for i in range(50):
            factor = plan.slowdown(f"t{i}", 0)
            assert 2.0 <= factor <= 6.0

    def test_healthy_plan_never_slows(self):
        plan = FaultPlan(seed=4)
        assert all(plan.slowdown(f"t{i}", 0) == 1.0 for i in range(20))

    def test_node_lookups(self):
        nf = NodeFault("x1", crash_at_s=12.0)
        plan = FaultPlan(node_faults=(nf,))
        assert plan.node_fault("x1") is nf
        assert plan.node_fault("x0") is None
        assert plan.crash_time("x1") == 12.0
        assert plan.crash_time("x0") is None
