"""`repro.lint`: rule fixtures, suppressions, baseline, CLI, self-check.

Every shipped rule gets at least one positive and one negative snippet
through the :func:`repro.lint.lint_source` harness; the suite ends with
the self-check that the real tree lints clean modulo the committed
baseline — the invariant the CI lint job enforces.
"""

from __future__ import annotations

import io
import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.lint import (Baseline, Finding, all_rules, lint_source,
                        lint_tree, load_baseline, parse_suppressions,
                        split_findings)
from repro.lint.cli import run_lint

ROOT = Path(__file__).resolve().parent.parent

SIM = "src/repro/sim/example.py"
ANY = "src/repro/analysis/example.py"


def hits(rule_id: str, source: str, relpath: str = ANY):
    """Findings of one rule for an in-memory snippet."""
    source = textwrap.dedent(source)
    return [f for f in lint_source(source, relpath)
            if f.rule_id == rule_id]


class TestDET001BareHash:
    def test_positive_bare_hash(self):
        found = hits("DET001", """\
            def partition(key, n):
                return hash(key) % n
            """)
        assert len(found) == 1
        assert found[0].line == 2
        assert "PYTHONHASHSEED" in found[0].message

    def test_negative_crc32(self):
        assert not hits("DET001", """\
            import zlib
            def partition(key, n):
                return zlib.crc32(repr(key).encode()) % n
            """)

    def test_negative_method_named_hash(self):
        assert not hits("DET001", "digest = hasher.hash()\n")

    def test_out_of_scope_path_ignored(self):
        assert not hits("DET001", "x = hash('a')\n",
                        relpath="tools/example.py")


class TestDET002UnseededRandom:
    def test_positive_unseeded_random(self):
        found = hits("DET002", """\
            import random
            rng = random.Random()
            """)
        assert len(found) == 1 and "seed" in found[0].message

    def test_positive_module_level_call(self):
        assert hits("DET002", """\
            import random
            x = random.choice(options)
            """)

    def test_positive_unseeded_default_rng(self):
        assert hits("DET002", """\
            import numpy as np
            rng = np.random.default_rng()
            """)

    def test_negative_seeded(self):
        assert not hits("DET002", """\
            import random
            rng = random.Random(7)
            draws = rng.random()
            """)

    def test_negative_seeded_default_rng(self):
        assert not hits("DET002", """\
            import numpy as np
            rng = np.random.default_rng(7)
            """)


class TestDET003WallClock:
    def test_positive_time_time_in_sim(self):
        found = hits("DET003", """\
            import time
            t0 = time.time()
            """, relpath=SIM)
        assert len(found) == 1 and "sim.now" in found[0].message

    def test_positive_from_import_alias(self):
        assert hits("DET003", """\
            from time import perf_counter as pc
            t0 = pc()
            """, relpath="src/repro/mapreduce/example.py")

    def test_positive_datetime_now(self):
        assert hits("DET003", """\
            from datetime import datetime
            stamp = datetime.now()
            """, relpath="src/repro/hdfs/example.py")

    def test_negative_outside_model_scope(self):
        # Wall time is legitimate in the bench/ and obs/prof layers.
        assert not hits("DET003", """\
            import time
            t0 = time.time()
            """, relpath="src/repro/bench/example.py")

    def test_positive_serve_pool_worker(self):
        # The one file in serve/ that computes simulation results is
        # held to the model bar.
        assert hits("DET003", """\
            import time
            t0 = time.time()
            """, relpath="src/repro/serve/work.py")

    def test_positive_loadgen_generator(self):
        # Trace generation must be seed-deterministic, so no host clock.
        assert hits("DET003", """\
            import time
            t0 = time.time()
            """, relpath="src/repro/loadgen/generator.py")

    def test_negative_serve_traffic_layer(self):
        # Latency/uptime accounting in the service itself is sanctioned.
        assert not hits("DET003", """\
            import time
            t0 = time.time()
            """, relpath="src/repro/serve/service.py")

    def test_negative_sim_now(self):
        assert not hits("DET003", "t = self.sim.now\n", relpath=SIM)

    def test_positive_flow_stored_clock_reference(self):
        # Flow-backed: the syntactic pattern sees no time.* call here.
        found = hits("DET003", """\
            import time
            def measure():
                clock = time.perf_counter
                return clock()
            """, relpath=SIM)
        assert len(found) == 1
        assert "stored wall-clock function reference" in found[0].message

    def test_positive_flow_from_import_reference(self):
        assert hits("DET003", """\
            from time import monotonic
            def measure():
                clock = monotonic
                t = clock()
                return t
            """, relpath=SIM)


class TestDET004UnsortedSetIteration:
    def test_positive_loop_feeding_append(self):
        found = hits("DET004", """\
            def collect(xs, out):
                for x in set(xs):
                    out.append(x)
            """)
        assert len(found) == 1 and "sorted" in found[0].message

    def test_positive_loop_feeding_yield(self):
        assert hits("DET004", """\
            def emit(transaction):
                for item in set(transaction):
                    yield (item, 1)
            """)

    def test_positive_comprehension_into_join(self):
        assert hits("DET004", """\
            def render(xs):
                return ",".join(str(x) for x in set(xs))
            """)

    def test_positive_values_into_list(self):
        assert hits("DET004", "snapshot = list(running.values())\n")

    def test_negative_sorted_loop(self):
        assert not hits("DET004", """\
            def collect(xs, out):
                for x in sorted(set(xs)):
                    out.append(x)
            """)

    def test_negative_order_insensitive_reduction(self):
        assert not hits("DET004", """\
            total = sum(weights.values())
            biggest = max(set(xs))
            """)

    def test_negative_membership_and_return_of_collection(self):
        assert not hits("DET004", """\
            def live(nodes, down):
                ok = "a" in set(nodes)
                return frozenset(n for n in nodes if n not in down)
            """)

    def test_positive_flow_one_hop_set_loop(self):
        # Flow-backed: the set reaches the loop through a variable, which
        # the purely syntactic pattern cannot see.
        found = hits("DET004", """\
            def collect(xs, out):
                uniq = set(xs)
                for x in uniq:
                    out.append(x)
            """)
        assert len(found) == 1
        assert "through a variable" in found[0].message \
            or "loop over a variable" in found[0].message

    def test_positive_flow_materialized_set_order(self):
        # list(set) bakes hash order into a sequence; extending output
        # with it later is the same hazard one hop removed.
        found = hits("DET004", """\
            def snapshot(xs, out):
                frozen = list(set(xs))
                out.extend(frozen)
            """)
        # The syntactic half flags list(set(...)) too; the flow half
        # must additionally report the order reaching the sink.
        assert any("sort before emitting" in f.message for f in found)

    def test_negative_flow_proven_dict_display_view(self):
        # The receiver is a dict display: insertion order is source
        # order, so iterating its views is deterministic.  The
        # syntactic half alone would flag `list(d.values())`.
        assert not hits("DET004", """\
            def table():
                d = {"atom": 1, "xeon": 2}
                return list(d.values())
            """)

    def test_negative_flow_kwargs_keys(self):
        assert not hits("DET004", """\
            def axes(**kwargs):
                names = tuple(kwargs.keys())
                return names
            """)

    def test_negative_flow_sorted_in_place(self):
        # .sort() defines the order in place; no hazard remains.
        assert not hits("DET004", """\
            def ordered(xs, out):
                uniq = set(xs)
                kept = list(uniq)
                kept.sort()
                out.extend(kept)
            """)


class TestDET005UnsortedDirListing:
    def test_positive_listdir_loop(self):
        found = hits("DET005", """\
            import os
            def scan(path):
                for name in os.listdir(path):
                    handle(name)
            """)
        assert len(found) == 1 and "sorted" in found[0].message

    def test_positive_pathlib_glob(self):
        assert hits("DET005", "entries = list(bucket.glob('*.pkl'))\n")

    def test_negative_sorted_glob(self):
        assert not hits("DET005", """\
            import glob
            files = sorted(glob.glob(pattern))
            entries = sorted(p for p in root.rglob('*.py'))
            """)

    def test_negative_length_only(self):
        assert not hits("DET005",
                        "n = sum(1 for _ in bucket.iterdir())\n")

    def test_negative_flow_proven_count_only(self):
        # Flow-backed prove-safe: the listing is named but only ever
        # counted — order never leaks, so no finding.  The syntactic
        # pattern alone would flag the bare os.listdir() call.
        assert not hits("DET005", """\
            import os
            def count(path):
                names = os.listdir(path)
                return len(names)
            """)

    def test_positive_flow_leaked_through_variable(self):
        # Same shape, but the listing order reaches a loop + sink.
        found = hits("DET005", """\
            import os
            def scan(path, out):
                names = os.listdir(path)
                for name in names:
                    out.append(name)
            """)
        assert len(found) == 1 and "sorted" in found[0].message


class TestDET006TaintedSink:
    """Pure-dataflow rule: nondeterministic values at output sinks."""

    # The acceptance-criteria regression fixture: a wall-clock read
    # reaches an output sink through a local variable.  Caught by
    # DET006, invisible to the per-node syntactic rules DET001-005.
    REGRESSION = """\
        import time
        def sample(rows):
            t = time.time()
            n = 2 * 3
            rows.append(t)
        """

    def test_regression_caught_by_det006(self):
        found = hits("DET006", self.REGRESSION)
        assert len(found) == 1
        assert "time.time()" in found[0].message
        assert ".append()" in found[0].message

    def test_regression_missed_by_every_older_rule(self):
        # The other direction of the acceptance check: no DET001-005
        # (nor any other rule) fires on the same snippet.
        findings = lint_source(textwrap.dedent(self.REGRESSION), ANY)
        assert {f.rule_id for f in findings} == {"DET006"}

    def test_positive_rng_draw_to_yield(self):
        found = hits("DET006", """\
            import random
            def draws(n):
                for _ in range(n):
                    v = random.random()
                    yield v
            """)
        assert found and "yield" in found[0].message

    def test_positive_hash_through_arithmetic(self):
        found = hits("DET006", """\
            def bucket(key, out):
                h = hash(key)
                slot = h % 64
                out.append(slot)
            """)
        assert found and "hash()" in found[0].message

    def test_positive_taint_through_branch_join(self):
        assert hits("DET006", """\
            import time
            def stamp(fast, rows):
                t = 0.0
                if fast:
                    t = time.time()
                rows.append(t)
            """)

    def test_negative_len_sanitizes(self):
        # A count carries neither the value nor the order.
        assert not hits("DET006", """\
            import time
            def width(rows):
                t = time.time()
                n = len(str(t))
                rows.append(n)
            """)

    def test_negative_value_never_reaches_sink(self):
        assert not hits("DET006", """\
            import time
            def timed(rows):
                t0 = time.time()
                rows.append(1)
                return len(rows)
            """)

    def test_out_of_scope_tier_ignored(self):
        # bench/ legitimately times things.
        assert not hits("DET006", textwrap.dedent(self.REGRESSION),
                        relpath="src/repro/bench/example.py")


class TestPURE001ImpureModelCode:
    def test_positive_open_in_sim(self):
        found = hits("PURE001", """\
            def load(path):
                with open(path) as fh:
                    return fh.read()
            """, relpath=SIM)
        assert len(found) == 1 and "I/O" in found[0].message

    def test_positive_print_and_path_write(self):
        found = hits("PURE001", """\
            def debug(p, msg):
                print(msg)
                p.write_text(msg)
            """, relpath="src/repro/arch/example.py")
        assert len(found) == 2

    def test_positive_subprocess(self):
        assert hits("PURE001", """\
            import subprocess
            subprocess.run(["ls"])
            """, relpath=SIM)

    def test_negative_same_code_in_analysis_layer(self):
        assert not hits("PURE001", """\
            def load(path):
                with open(path) as fh:
                    return fh.read()
            """, relpath=ANY)

    def test_negative_pure_model_code(self):
        assert not hits("PURE001", """\
            def service_time(size_bytes, bw):
                return size_bytes / bw
            """, relpath=SIM)

    def test_positive_serve_pool_worker(self):
        assert hits("PURE001", """\
            def simulate_batch(keys):
                print(keys)
            """, relpath="src/repro/serve/work.py")

    def test_negative_serve_traffic_layer(self):
        # The HTTP/service layer talks to sockets by definition.
        assert not hits("PURE001", """\
            import socket
            s = socket.create_connection(("localhost", 80))
            """, relpath="src/repro/serve/http.py")


class TestOBS001UnguardedHandle:
    def test_positive_direct_active_call(self):
        found = hits("OBS001", """\
            from repro.obs import prof
            def f():
                prof.ACTIVE.count("x")
            """)
        assert len(found) == 1 and "None" in found[0].message

    def test_positive_unguarded_alias(self):
        assert hits("OBS001", """\
            from repro.obs import prof
            def f():
                profiler = prof.ACTIVE
                profiler.record("x", 1.0)
            """)

    def test_positive_unguarded_sim_obs(self):
        assert hits("OBS001", """\
            def g(self):
                self.sim.obs.count("engine.wakes")
            """)

    def test_negative_guarded_alias(self):
        assert not hits("OBS001", """\
            from repro.obs import prof
            def f():
                profiler = prof.ACTIVE
                if profiler is not None:
                    profiler.record("x", 1.0)
            """)

    def test_negative_guarded_attribute(self):
        assert not hits("OBS001", """\
            def g(self):
                if self.sim.obs is not None:
                    self.sim.obs.count("engine.wakes")
            """)

    def test_negative_conditional_expression(self):
        assert not hits("OBS001", """\
            def g(self, obs):
                span = self.sim.obs.begin("s") if self.sim.obs is not None else None
            """)

    def test_negative_inside_obs_package(self):
        assert not hits("OBS001", """\
            def install(self):
                prof.ACTIVE.reset()
            """, relpath="src/repro/obs/helpers.py")

    def test_positive_unguarded_reqtrace_active(self):
        found = hits("OBS001", """\
            from repro.obs import reqtrace
            def f():
                reqtrace.ACTIVE.start("/simulate")
            """)
        assert len(found) == 1 and "None" in found[0].message

    def test_positive_unguarded_slog_active(self):
        assert hits("OBS001", """\
            from repro.obs import slog
            def f():
                slog.ACTIVE.log("event")
            """)

    def test_positive_unguarded_telemetry_attribute(self):
        assert hits("OBS001", """\
            def f(self):
                self.service.telemetry.start("/simulate")
            """)

    def test_negative_guarded_telemetry_alias(self):
        assert not hits("OBS001", """\
            def f(self):
                tel = self.service.telemetry
                if tel is not None:
                    tel.start("/simulate")
            """)

    def test_negative_slog_emit_is_not_a_handle_call(self):
        # slog.emit() guards internally; only ACTIVE needs a site guard.
        assert not hits("OBS001", """\
            from repro.obs import slog
            def f():
                slog.emit("request.shed", route="/simulate")
            """)


class TestOBS001ResultTierTelemetryLeak:
    def test_positive_registry_import_in_sim(self):
        found = hits("OBS001", """\
            from repro.obs.registry import MetricsRegistry
            """, relpath=SIM)
        assert found and "result-computing" in found[0].message

    def test_positive_relative_reqtrace_import_in_mapreduce(self):
        assert hits("OBS001", """\
            from ..obs.reqtrace import RequestTelemetry
            """, relpath="src/repro/mapreduce/example.py")

    def test_positive_slog_submodule_import_in_cluster(self):
        assert hits("OBS001", """\
            from ..obs import slog
            """, relpath="src/repro/cluster/example.py")

    def test_positive_telemetry_type_use_in_arch(self):
        assert hits("OBS001", """\
            def f():
                registry = MetricsRegistry()
                return registry
            """, relpath="src/repro/arch/example.py")

    def test_negative_same_code_in_serve_tier(self):
        assert not hits("OBS001", """\
            from repro.obs.registry import MetricsRegistry
            registry = MetricsRegistry()
            """, relpath="src/repro/serve/example.py")

    def test_negative_prof_import_still_allowed_in_sim(self):
        # The per-phase profiler is sanctioned in the model packages;
        # only the request-telemetry trio is tier-restricted.
        assert not hits("OBS001", """\
            from ..obs import prof
            def f():
                profiler = prof.ACTIVE
                if profiler is not None:
                    profiler.count("x")
            """, relpath=SIM)


class TestDOC001BrokenLink:
    def test_positive_broken_relative_link(self, tmp_path):
        findings = lint_source("see [here](missing/file.md)\n",
                               relpath="doc.md", root=tmp_path)
        assert [f.rule_id for f in findings] == ["DOC001"]
        assert "missing/file.md" in findings[0].message

    def test_negative_existing_external_and_fragment(self, tmp_path):
        (tmp_path / "other.md").write_text("x")
        text = ("[a](other.md) [b](https://example.com) "
                "[c](#anchor) [d](other.md#frag)\n")
        assert lint_source(text, relpath="doc.md", root=tmp_path) == []


class TestSuppressions:
    def test_line_suppression(self):
        assert not hits(
            "DET001",
            "x = hash('a')  # detlint: disable=DET001 -- test fixture\n")

    def test_line_suppression_all(self):
        assert not hits("DET001", "x = hash('a')  # detlint: disable=all\n")

    def test_file_wide_suppression(self):
        assert not hits("DET001", """\
            # detlint: disable-file=DET001 -- fixture module
            x = hash('a')
            y = hash('b')
            """)

    def test_other_rules_unaffected(self):
        source = textwrap.dedent("""\
            import random
            x = hash('a')  # detlint: disable=DET001
            rng = random.Random()
            """)
        assert not [f for f in lint_source(source, ANY)
                    if f.rule_id == "DET001"]
        assert [f for f in lint_source(source, ANY)
                if f.rule_id == "DET002"]

    def test_docstring_directive_not_honored(self):
        # Directives are read from real comments only; quoting one in a
        # docstring must not disable anything.
        assert hits("DET001", '''\
            """Docs quoting `# detlint: disable-file=DET001` verbatim."""
            x = hash('a')
            ''')

    def test_parse_suppressions_api(self):
        sup = parse_suppressions(
            "a = 1  # detlint: disable=DET001,DET002\n")
        assert sup.is_suppressed("DET001", 1)
        assert sup.is_suppressed("DET002", 1)
        assert not sup.is_suppressed("DET003", 1)
        assert not sup.is_suppressed("DET001", 2)

    def test_multiline_statement_trailing_directive(self):
        # The finding anchors at the statement's first line; the
        # directive sits on the closing line of the wrapped call.
        assert not hits("DET001", """\
            value = compute(
                hash('a'),
                7,
            )  # detlint: disable=DET001 -- fixture
            """)

    def test_multiline_statement_leading_directive(self):
        assert not hits("DET001", """\
            value = compute(  # detlint: disable=DET001 -- fixture
                hash('a'),
            )
            """)

    def test_decorated_def_directive_covers_decorator_line(self):
        # The hash() sits in a decorator argument on line 1; a
        # directive at the end of the decorator's logical line covers it.
        assert not hits("DET001", """\
            @cached(key=hash('a'))  # detlint: disable=DET001 -- fixture
            def f():
                return 1
            """)

    def test_directive_on_one_statement_not_the_next(self):
        source = textwrap.dedent("""\
            x = compute(
                hash('a'),
            )  # detlint: disable=DET001 -- only this statement
            y = hash('b')
            """)
        found = [f for f in lint_source(source, ANY)
                 if f.rule_id == "DET001"]
        assert [f.line for f in found] == [4]

    def test_file_wide_directive_after_code_still_applies(self):
        # disable-file is positional-independent: wherever it appears,
        # the whole file is exempt (including lines above it).
        assert not hits("DET001", """\
            x = hash('a')
            y = hash('b')
            # detlint: disable-file=DET001 -- fixture module
            """)

    def test_crlf_line_endings(self):
        source = ("x = hash('a')  # detlint: disable=DET001 -- f\r\n"
                  "y = 1\r\n")
        assert not [f for f in lint_source(source, ANY)
                    if f.rule_id == "DET001"]

    def test_bom_prefixed_source(self):
        source = ("\ufeff" + "x = hash('a')"
                  "  # detlint: disable=DET001 -- f\n")
        sup = parse_suppressions(source)
        assert sup.is_suppressed("DET001", 1)

    def test_unknown_rule_id_warns(self):
        sup = parse_suppressions(
            "x = 1  # detlint: disable=DET999 -- typo\n")
        warnings = sup.directive_warnings("src/repro/mod.py")
        assert len(warnings) == 1
        warning = warnings[0]
        assert warning.rule_id == "LINT001"
        assert warning.severity == "warning"
        assert "DET999" in warning.message

    def test_known_and_pseudo_ids_do_not_warn(self):
        sup = parse_suppressions(textwrap.dedent("""\
            a = 1  # detlint: disable=DET001 -- real rule
            b = 2  # detlint: disable=all -- blanket
            c = 3  # detlint: disable=LINT000 -- pseudo rule
            """))
        assert sup.directive_warnings("src/repro/mod.py") == []


class TestBaseline:
    def _findings(self):
        return [Finding("DET001", "src/a.py", 10, 4, "msg-a"),
                Finding("DET001", "src/a.py", 20, 4, "msg-a"),
                Finding("DET004", "src/b.py", 5, 0, "msg-b")]

    def test_round_trip(self, tmp_path):
        findings = self._findings()
        path = tmp_path / "baseline.json"
        Baseline.from_findings(findings).save(path)
        loaded = load_baseline(path)
        new, old = split_findings(findings, loaded)
        assert new == [] and len(old) == 3

    def test_excess_occurrence_is_new(self, tmp_path):
        findings = self._findings()
        path = tmp_path / "baseline.json"
        Baseline.from_findings(findings[:1]).save(path)
        new, old = split_findings(findings, load_baseline(path))
        assert len(old) == 1
        assert {f.baseline_key for f in new} == {
            ("DET001", "src/a.py", "msg-a"), ("DET004", "src/b.py", "msg-b")}

    def test_line_drift_still_matches(self, tmp_path):
        path = tmp_path / "baseline.json"
        Baseline.from_findings(
            [Finding("DET001", "src/a.py", 10, 4, "msg-a")]).save(path)
        drifted = [Finding("DET001", "src/a.py", 99, 0, "msg-a")]
        new, old = split_findings(drifted, load_baseline(path))
        assert new == [] and len(old) == 1

    def test_missing_file_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json").total == 0

    def test_corrupt_file_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ValueError):
            load_baseline(bad)


def _make_tree(tmp_path: Path, source: str) -> Path:
    """A minimal repo root with one lintable module."""
    (tmp_path / "pyproject.toml").write_text("[project]\nname='x'\n")
    pkg = tmp_path / "src" / "repro"
    pkg.mkdir(parents=True)
    (pkg / "mod.py").write_text(textwrap.dedent(source))
    return tmp_path


class TestCliAndJsonSchema:
    def test_json_schema_and_exit_code(self, tmp_path):
        root = _make_tree(tmp_path, """\
            def partition(key, n):
                return hash(key) % n
            """)
        out = io.StringIO()
        code = run_lint(root=str(root), output_format="json", stdout=out)
        assert code == 1
        report = json.loads(out.getvalue())
        assert report["version"] == 1
        assert report["files_checked"] == 1
        assert report["counts"] == {"total": 1, "new": 1, "baselined": 0,
                                    "suppressed": 0}
        (entry,) = report["findings"]
        assert set(entry) == {"rule", "path", "line", "col", "message",
                              "severity", "new"}
        assert entry["rule"] == "DET001" and entry["new"] is True
        assert entry["path"] == "src/repro/mod.py"

    def test_update_baseline_then_clean(self, tmp_path):
        root = _make_tree(tmp_path, "x = hash('a')\n")
        assert run_lint(root=str(root), stdout=io.StringIO()) == 1
        assert run_lint(root=str(root), update_baseline=True,
                        stdout=io.StringIO()) == 0
        out = io.StringIO()
        assert run_lint(root=str(root), stdout=out) == 0
        assert "1 baselined" in out.getvalue()
        # --no-baseline re-exposes the finding.
        assert run_lint(root=str(root), no_baseline=True,
                        stdout=io.StringIO()) == 1

    def test_unknown_suppression_id_warns_but_does_not_gate(self, tmp_path):
        root = _make_tree(
            tmp_path, "x = 1  # detlint: disable=DET999 -- typo\n")
        out = io.StringIO()
        code = run_lint(root=str(root), output_format="json", stdout=out)
        # A warning surfaces in the report but never fails the run.
        assert code == 0
        report = json.loads(out.getvalue())
        (entry,) = report["findings"]
        assert entry["rule"] == "LINT001"
        assert entry["severity"] == "warning"
        assert "DET999" in entry["message"]

    def test_bom_file_parses_and_suppresses(self, tmp_path):
        root = _make_tree(tmp_path, "x = 1\n")
        mod = root / "src" / "repro" / "mod.py"
        mod.write_bytes(
            b"\xef\xbb\xbfx = hash('a')  # detlint: disable=DET001 -- f\n")
        out = io.StringIO()
        code = run_lint(root=str(root), output_format="json", stdout=out)
        assert code == 0
        report = json.loads(out.getvalue())
        # No LINT000 read/parse error, and the suppression took effect.
        assert report["counts"]["total"] == 0
        assert report["counts"]["suppressed"] == 1

    def test_markdown_directive_examples_do_not_warn(self, tmp_path):
        # Docs legitimately show directive syntax with placeholder ids.
        root = _make_tree(tmp_path, "x = 1\n")
        (root / "GUIDE.md").write_text(
            "Use `# detlint: disable=RULEID -- why` to suppress.\n")
        out = io.StringIO()
        assert run_lint(root=str(root), output_format="json",
                        stdout=out) == 0
        assert json.loads(out.getvalue())["counts"]["total"] == 0

    def test_output_file_written(self, tmp_path):
        root = _make_tree(tmp_path, "x = 1\n")
        report_path = tmp_path / "report.json"
        assert run_lint(root=str(root), output=str(report_path),
                        stdout=io.StringIO()) == 0
        assert json.loads(report_path.read_text())["counts"]["total"] == 0

    def test_explicit_paths_limit_scope(self, tmp_path):
        root = _make_tree(tmp_path, "x = hash('a')\n")
        clean = root / "src" / "repro" / "clean.py"
        clean.write_text("y = 1\n")
        out = io.StringIO()
        code = run_lint(paths=["src/repro/clean.py"], root=str(root),
                        stdout=out)
        assert code == 0

    def test_list_rules(self):
        out = io.StringIO()
        assert run_lint(list_rules=True, stdout=out) == 0
        text = out.getvalue()
        for rule in all_rules():
            assert rule.id in text

    def test_main_entry_point(self, tmp_path, capsys):
        from repro.cli import main
        root = _make_tree(tmp_path, "x = hash('a')\n")
        assert main(["lint", "--root", str(root), "--no-baseline"]) == 1
        assert "DET001" in capsys.readouterr().out


class TestSelfCheck:
    """The committed tree must lint clean modulo the committed baseline."""

    def test_rule_catalog_complete(self):
        assert [r.id for r in all_rules()] == [
            "ARCH001", "DET001", "DET002", "DET003", "DET004", "DET005",
            "DET006", "DOC001", "OBS001", "PURE001"]
        for rule in all_rules():
            assert rule.description and rule.kind in ("python", "markdown")

    def test_tree_lints_clean_modulo_baseline(self):
        result = lint_tree(ROOT)
        baseline = load_baseline(ROOT / "lint-baseline.json")
        new, _old = split_findings(result.findings, baseline)
        assert new == [], "new lint findings:\n" + "\n".join(
            f.render() for f in new)

    def test_seeded_hazard_fails_the_gate(self, tmp_path):
        # Acceptance check from the issue: a reintroduced bare hash()
        # in mapreduce/functional.py must exit non-zero.
        target = ROOT / "src" / "repro" / "mapreduce" / "functional.py"
        sabotaged = target.read_text().replace(
            "zlib.crc32(repr(key).encode()) % num_reducers",
            "hash(key) % num_reducers")
        assert sabotaged != target.read_text(), \
            "partitioner changed; update this fixture"
        mirror = tmp_path / "src" / "repro" / "mapreduce"
        mirror.mkdir(parents=True)
        (tmp_path / "pyproject.toml").write_text("[project]\nname='x'\n")
        (mirror / "functional.py").write_text(sabotaged)
        out = io.StringIO()
        code = run_lint(root=str(tmp_path), stdout=out)
        assert code == 1 and "DET001" in out.getvalue()


class TestFPGrowthDeterminismRegression:
    """PR 5 fix: the PFP count mapper iterated `set(transaction)`.

    String-set iteration order is PYTHONHASHSEED-salted, so the emitted
    pair stream — and everything downstream of the shuffle — depended
    on the process's hash seed.  The mapper now iterates
    ``sorted(set(...))``; this proves the whole PFP result (content
    *and* iteration order) is hash-seed independent.
    """

    SCRIPT = textwrap.dedent("""\
        from repro.workloads.fp_growth import parallel_fp_growth
        txs = [["milk", "bread", "beer"], ["bread", "butter"],
               ["milk", "bread", "butter"], ["beer", "diapers"],
               ["milk", "beer", "diapers", "bread"]] * 3
        result = parallel_fp_growth(txs, min_support=3, num_groups=3)
        print([(sorted(k), v) for k, v in result.items()])
        """)

    def _run(self, hashseed: str) -> str:
        env = {"PYTHONPATH": str(ROOT / "src"),
               "PYTHONHASHSEED": hashseed, "PATH": "/usr/bin:/bin"}
        proc = subprocess.run(
            [sys.executable, "-c", self.SCRIPT], env=env,
            capture_output=True, text=True, timeout=120)
        assert proc.returncode == 0, proc.stderr
        return proc.stdout

    def test_output_identical_across_hash_seeds(self):
        outputs = {self._run(seed) for seed in ("0", "1", "4242")}
        assert len(outputs) == 1
        assert "milk" in outputs.pop()
