"""Tests for phase-aware heterogeneous scheduling (extension)."""

from __future__ import annotations

import pytest

from repro.arch.presets import ATOM_C2758, XEON_E5_2420
from repro.cluster.server import Cluster
from repro.core.phase_scheduler import (PHASE_PLACEMENTS,
                                        best_phase_placement,
                                        compare_phase_placements,
                                        simulate_phase_scheduled_job)
from repro.mapreduce.config import DEFAULT_CONF
from repro.mapreduce.driver import HadoopJobRunner
from repro.sim.engine import Simulator
from repro.workloads.base import workload


@pytest.fixture(scope="module")
def nb_results():
    return compare_phase_placements("naive_bayes", data_per_node_gb=2.0,
                                    block_size_mb=128.0)


class TestDriverFilters:
    def _cluster(self):
        sim = Simulator()
        return Cluster.heterogeneous(sim, [
            {"spec": XEON_E5_2420, "n_nodes": 1, "freq_ghz": 1.8},
            {"spec": ATOM_C2758, "n_nodes": 2, "freq_ghz": 1.8},
        ])

    def test_map_machines_respected(self):
        cluster = self._cluster()
        runner = HadoopJobRunner(cluster, workload("wordcount"),
                                 DEFAULT_CONF, 2 ** 30,
                                 map_machines={"atom"})
        runner.run()
        map_nodes = {iv.node for iv in cluster.trace.filter(
            device="core", phase="map")}
        assert all(n.startswith("atom") for n in map_nodes)

    def test_reduce_machines_respected(self):
        cluster = self._cluster()
        runner = HadoopJobRunner(cluster, workload("wordcount"),
                                 DEFAULT_CONF, 2 ** 30,
                                 reduce_machines={"xeon"})
        runner.run()
        reduce_cores = {iv.node for iv in cluster.trace.filter(
            device="core", phase="reduce")}
        assert all(n.startswith("xeon") for n in reduce_cores)

    def test_unknown_machine_type_rejected(self):
        cluster = self._cluster()
        with pytest.raises(ValueError):
            HadoopJobRunner(cluster, workload("wordcount"), DEFAULT_CONF,
                            2 ** 30, map_machines={"sparc"})

    def test_no_filter_uses_all_nodes(self):
        cluster = self._cluster()
        runner = HadoopJobRunner(cluster, workload("wordcount"),
                                 DEFAULT_CONF, 2 ** 30)
        runner.run()
        map_nodes = {iv.node for iv in cluster.trace.filter(
            device="core", phase="map")}
        assert any(n.startswith("atom") for n in map_nodes)
        assert any(n.startswith("xeon") for n in map_nodes)


class TestPlacements:
    def test_all_placements_complete(self, nb_results):
        assert set(nb_results) == set(PHASE_PLACEMENTS)
        for result in nb_results.values():
            assert result.execution_time_s > 0
            assert result.dynamic_energy_j > 0

    def test_xeon_maps_faster_than_atom_maps(self, nb_results):
        assert (nb_results["xeon/xeon"].execution_time_s
                < nb_results["atom/atom"].execution_time_s)

    def test_reduce_on_xeon_beats_reduce_on_atom(self, nb_results):
        """NB's memory-bound reduce prefers the big core, so for either
        map pool, pinning the reduce to Xeon lowers EDP."""
        assert (nb_results["atom/xeon"].edp
                < nb_results["atom/atom"].edp)
        assert (nb_results["xeon/xeon"].edp
                < nb_results["xeon/atom"].edp)

    def test_atom_maps_cut_energy(self, nb_results):
        assert (nb_results["atom/xeon"].dynamic_energy_j
                < nb_results["xeon/xeon"].dynamic_energy_j)

    def test_invalid_placement_string(self):
        with pytest.raises(ValueError):
            simulate_phase_scheduled_job("wordcount", "atom-xeon")
        with pytest.raises(ValueError):
            simulate_phase_scheduled_job("wordcount", "atom/epyc")

    def test_best_placement_metrics(self):
        results = compare_phase_placements("wordcount",
                                           data_per_node_gb=1.0,
                                           block_size_mb=128.0)
        best_edp = best_phase_placement("wordcount", metric="edp",
                                        data_per_node_gb=1.0,
                                        block_size_mb=128.0)
        assert best_edp.edp == min(r.edp for r in results.values())
        best_time = best_phase_placement("wordcount", metric="time",
                                         data_per_node_gb=1.0,
                                         block_size_mb=128.0)
        assert best_time.execution_time_s == min(
            r.execution_time_s for r in results.values())
        with pytest.raises(ValueError):
            best_phase_placement("wordcount", metric="carbon")

    def test_wordcount_mixed_beats_homogeneous_atom(self):
        """The characterization-implied split (little maps, big reduces)
        improves on the all-little cluster for WordCount."""
        results = compare_phase_placements("wordcount",
                                           data_per_node_gb=1.0,
                                           block_size_mb=128.0)
        assert results["atom/xeon"].edp < results["atom/atom"].edp
