"""Unit tests for NameNode placement and replica selection."""

from __future__ import annotations

import pytest

from repro.hdfs.blocks import Block, split_input
from repro.hdfs.namenode import NameNode

NODES = ["n0", "n1", "n2"]


class TestPlacement:
    def test_replication_count(self):
        nn = NameNode(NODES, replication=3)
        placed = nn.place_block(Block("f", 0, 100))
        assert len(placed.replicas) == 3
        assert len(set(placed.replicas)) == 3

    def test_replication_clamped_to_cluster(self):
        nn = NameNode(["only"], replication=3)
        placed = nn.place_block(Block("f", 0, 100))
        assert placed.replicas == ("only",)

    def test_writer_is_primary(self):
        nn = NameNode(NODES)
        placed = nn.place_block(Block("f", 0, 100), writer="n2")
        assert placed.replicas[0] == "n2"

    def test_unknown_writer_rejected(self):
        nn = NameNode(NODES)
        with pytest.raises(ValueError):
            nn.place_block(Block("f", 0, 100), writer="mars")

    def test_round_robin_primaries_balance(self):
        nn = NameNode(NODES)
        blocks = split_input("f", 600, 100)
        placed = nn.register_file("f", blocks)
        primaries = [b.replicas[0] for b in placed]
        assert primaries.count("n0") == 2
        assert primaries.count("n1") == 2
        assert primaries.count("n2") == 2

    def test_deterministic_under_seed(self):
        def place():
            nn = NameNode(NODES, seed=42)
            return [b.replicas for b in nn.register_file(
                "f", split_input("f", 1000, 100))]
        assert place() == place()

    def test_validation(self):
        with pytest.raises(ValueError):
            NameNode([], replication=3)
        with pytest.raises(ValueError):
            NameNode(NODES, replication=0)


class TestLookups:
    def test_file_registry(self):
        nn = NameNode(NODES)
        nn.register_file("f", split_input("f", 250, 100))
        assert nn.files() == ["f"]
        assert len(nn.blocks_of("f")) == 3
        assert nn.file_size("f") == pytest.approx(250)

    def test_missing_file(self):
        nn = NameNode(NODES)
        with pytest.raises(KeyError):
            nn.blocks_of("ghost")

    def test_pick_replica_prefers_local(self):
        nn = NameNode(NODES)
        block = nn.place_block(Block("f", 0, 100), writer="n1")
        assert nn.pick_replica(block, "n1") == "n1"

    def test_pick_replica_remote_is_a_replica(self):
        nn = NameNode(NODES, replication=2)
        block = nn.place_block(Block("f", 0, 100), writer="n0")
        others = [n for n in NODES if n not in block.replicas]
        if others:
            chosen = nn.pick_replica(block, others[0])
            assert chosen in block.replicas

    def test_pick_replica_no_replicas_rejected(self):
        nn = NameNode(NODES)
        with pytest.raises(ValueError):
            nn.pick_replica(Block("f", 0, 100), "n0")

    def test_locality_fraction(self):
        nn = NameNode(NODES, replication=1)
        nn.register_file("f", split_input("f", 300, 100))
        assert nn.locality_fraction("f", NODES) == pytest.approx(1.0)
        # With replication 1 and round-robin primaries, one node holds 1/3.
        assert nn.locality_fraction("f", ["n0"]) == pytest.approx(1 / 3)
