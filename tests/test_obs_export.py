"""Tests for the trace exporters: Perfetto JSON, timeline CSV, summary."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.executor import ResultCache, run_cells
from repro.core.characterization import RunKey
from repro.mapreduce.driver import simulate_job
from repro.obs import (JobTrace, NodeInfo, Tracer, perfetto_json,
                       perfetto_trace, text_summary, timeline_csv,
                       write_trace_files)
from repro.sim.faults import FaultPlan, NodeFault

GOLDEN = Path(__file__).parent / "data" / "wordcount_small_trace.json"


def _small_trace() -> Tracer:
    t = Tracer()
    simulate_job("atom", "wordcount", data_per_node_gb=0.0625, obs=t)
    return t


@pytest.fixture(scope="module")
def tracer() -> Tracer:
    return _small_trace()


class TestPerfetto:
    def test_matches_golden_file(self, tracer):
        """Byte-for-byte against the checked-in trace.

        Regenerate after an intentional model/exporter change with:
        ``PYTHONPATH=src python tests/data/regen_golden.py``
        """
        assert perfetto_json(tracer).encode() == GOLDEN.read_bytes()

    def test_structure(self, tracer):
        doc = perfetto_trace(tracer)
        events = doc["traceEvents"]
        pids = {e["args"]["name"]: e["pid"] for e in events
                if e["ph"] == "M" and e["name"] == "process_name"}
        # one process per node plus the driver and engine tracks
        assert set(pids) == {"atom0", "atom1", "atom2", "driver", "engine"}
        threads = {(e["pid"], e["args"]["name"]) for e in events
                   if e["ph"] == "M" and e["name"] == "thread_name"}
        assert (pids["atom0"], "slot0") in threads
        assert (pids["driver"], "stages") in threads
        # counter tracks for live tasks and queue backlog and power
        counters = {(e["pid"], e["name"]) for e in events if e["ph"] == "C"}
        assert (pids["driver"], "tasks.running") in counters
        assert (pids["driver"], "queue.backlog.map") in counters
        assert (pids["atom1"], "power_w") in counters
        assert (pids["atom2"], "tasks.running") in counters
        # spans carry microsecond ts/dur within the makespan
        spans = [e for e in events if e["ph"] == "X"]
        limit = tracer.job.makespan * 1e6 + 1.0
        assert spans
        for e in spans:
            assert 0.0 <= e["ts"] <= limit
            assert e["dur"] >= 0.0

    def test_power_counter_returns_to_zero(self, tracer):
        doc = perfetto_trace(tracer)
        per_node = {}
        for e in doc["traceEvents"]:
            if e["ph"] == "C" and e["name"] == "power_w":
                per_node.setdefault(e["pid"], []).append(
                    (e["ts"], e["args"]["value"]))
        assert per_node
        for samples in per_node.values():
            assert samples == sorted(samples)
            assert samples[-1][1] == pytest.approx(0.0, abs=1e-9)

    def test_json_is_valid_and_compact(self, tracer):
        text = perfetto_json(tracer)
        assert json.loads(text)["otherData"]["workload"] == "wordcount"
        assert ": " not in text.splitlines()[0]  # compact separators


class TestDeterminism:
    def test_same_config_same_bytes(self, tracer):
        again = _small_trace()
        assert perfetto_json(tracer) == perfetto_json(again)
        assert timeline_csv(tracer.job) == timeline_csv(again.job)
        assert text_summary(tracer) == text_summary(again)

    def test_cli_trace_identical_across_jobs_width(self, tmp_path, capsys):
        from repro.cli import main
        outs = {}
        for jobs in ("1", "4"):
            outdir = tmp_path / f"j{jobs}"
            assert main(["trace", "wordcount", "--machine", "atom",
                         "--data-gb", "0.0625", "--out", str(outdir),
                         "--check", "--jobs", jobs]) == 0
            outs[jobs] = {p.name: p.read_bytes()
                          for p in sorted(outdir.iterdir())}
        capsys.readouterr()
        assert set(outs["1"]) == {"trace.json", "timeline.csv", "summary.txt"}
        assert outs["1"] == outs["4"]


class TestTimelineCsv:
    def test_shape_and_header(self, tracer):
        lines = timeline_csv(tracer.job, bins=10).splitlines()
        assert lines[0] == ("bin_start_s,node,core_util,disk_util,nic_util,"
                            "fw_util,uplift_w,energy_j")
        assert len(lines) == 1 + 10 * 3  # bins x nodes

    def test_energy_sums_to_breakdown(self, tracer):
        job = tracer.job
        total = 0.0
        for line in timeline_csv(job, bins=50).splitlines()[1:]:
            total += float(line.split(",")[-1])
        assert total == pytest.approx(job.energy.dynamic_joules, rel=1e-6)

    def test_utilization_bounded(self, tracer):
        for line in timeline_csv(tracer.job, bins=20).splitlines()[1:]:
            cells = line.split(",")
            core_util = float(cells[2])
            assert 0.0 <= core_util <= 1.0 + 1e-9

    def test_bins_validated(self, tracer):
        with pytest.raises(ValueError):
            timeline_csv(tracer.job, bins=0)


class TestTextSummary:
    def test_contents(self, tracer):
        text = text_summary(tracer)
        assert "wordcount on atom (3 nodes)" in text
        assert "makespan" in text and "dynamic energy" in text
        assert "top time sinks" in text
        assert "task waves" in text and "wave(s)" in text
        assert "running tasks" in text
        assert "recovery and wasted work" in text
        assert "events_dispatched" in text

    def test_crash_run_reports_recovery(self):
        t = Tracer()
        plan = FaultPlan(node_faults=(NodeFault("atom1", crash_at_s=60.0),))
        simulate_job("atom", "wordcount", fault_plan=plan, obs=t)
        text = text_summary(t)
        assert "node crashes    : 1" in text


class TestWriteTraceFiles:
    def test_writes_three_files(self, tracer, tmp_path):
        paths = write_trace_files(tracer, tmp_path / "out")
        assert [p.name for p in paths] == ["trace.json", "timeline.csv",
                                           "summary.txt"]
        for p in paths:
            assert p.exists() and p.stat().st_size > 0


def _bare_trace(makespan: float = 0.0, nodes=()) -> Tracer:
    """A tracer carrying a hand-built JobTrace (no simulation ran)."""
    tracer = Tracer(clock=lambda: 0.0)
    tracer.job = JobTrace(
        workload="synthetic", machine="atom", makespan=makespan,
        intervals=[], marks=[], nodes=list(nodes), node_power={},
        stages=[], counters=None)
    return tracer


class TestExporterEdgeCases:
    """Degenerate traces must still export valid, non-crashing artifacts."""

    def test_empty_trace(self):
        tracer = _bare_trace()
        doc = json.loads(perfetto_json(tracer))
        # Only process metadata survives; no spans, counters or instants.
        assert all(e["ph"] == "M" for e in doc["traceEvents"])
        assert doc["otherData"]["makespan_s"] == 0.0
        csv_text = timeline_csv(tracer.job)
        assert csv_text.splitlines()[0].startswith("bin_start_s,")
        assert len(csv_text.splitlines()) == 1  # header only: no nodes
        summary = text_summary(tracer)
        assert "synthetic on atom (0 nodes)" in summary
        assert "0.0 busy device-seconds" in summary

    def test_zero_length_spans(self):
        tracer = _bare_trace(
            makespan=10.0, nodes=[NodeInfo("atom0", "atom", 4)])
        with tracer.span("instantaneous", ("atom0", "slot0"), cat="task"):
            pass  # clock frozen: start == end
        tracer.begin("open-at-makespan", ("driver", "stages"))
        doc = json.loads(perfetto_json(tracer))
        spans = {e["name"]: e for e in doc["traceEvents"] if e["ph"] == "X"}
        assert spans["instantaneous"]["dur"] == 0.0
        # An unclosed span is clamped to the makespan, never negative.
        assert spans["open-at-makespan"]["dur"] == pytest.approx(10.0 * 1e6)
        assert text_summary(tracer)

    def test_counter_deduped_to_one_entry(self):
        tracer = _bare_trace(
            makespan=10.0, nodes=[NodeInfo("atom0", "atom", 4)])
        running = tracer.counter("tasks.running")
        running.set(0.0, 3.0)
        running.set(0.0, 5.0)   # same instant: collapses to the latest
        running.set(4.0, 5.0)   # no step: dropped
        assert running.samples == [(0.0, 5.0)]
        doc = json.loads(perfetto_json(tracer))
        counter_events = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        assert len(counter_events) == 1
        assert counter_events[0]["args"]["value"] == 5.0
        # The running-task chart renders a flat line from the single step.
        summary = text_summary(tracer)
        assert "running tasks" in summary and "peak 5" in summary


class TestExecutorObservability:
    def test_cache_hits_and_cell_spans_recorded(self, tmp_path):
        key = RunKey("atom", "wordcount", data_per_node_gb=0.0625)
        cache = ResultCache(tmp_path / "cache")
        cold = Tracer()
        run_cells([key], cache=cache, obs=cold)
        assert cold.meta.get("cache.misses") == 1
        assert "cache.hits" not in cold.meta
        [span] = cold.spans_on("executor", "serial")
        assert span.end is not None and "wordcount" in span.name
        warm = Tracer()
        run_cells([key], cache=cache, obs=warm)
        assert warm.meta.get("cache.hits") == 1
        assert warm.spans == []

    def test_obs_none_is_default(self):
        key = RunKey("atom", "wordcount", data_per_node_gb=0.0625)
        results = run_cells([key])
        assert results[key].execution_time_s > 0
