"""Tests for the programmatic paper-vs-measured validation."""

from __future__ import annotations

import pytest

from repro.analysis.validation import (PAPER_CLAIMS, Claim, ClaimResult,
                                       ValidationReport, validate)


class TestClaims:
    def test_claim_ids_unique(self):
        ids = [c.claim_id for c in PAPER_CLAIMS]
        assert len(set(ids)) == len(ids)

    def test_bands_well_formed(self):
        for claim in PAPER_CLAIMS:
            lo, hi = claim.band
            assert lo < hi, claim.claim_id
            if claim.paper_value is not None:
                # The paper value need not be inside our band (the Sort
                # outlier), but the band must touch its order of magnitude.
                assert hi >= claim.paper_value * 0.25, claim.claim_id

    def test_every_claim_cites_a_source(self):
        assert all(c.source for c in PAPER_CLAIMS)


class TestValidate:
    @pytest.fixture(scope="class")
    def report(self, characterizer):
        return validate(characterizer)

    def test_all_claims_in_band(self, report):
        misses = [r.claim.claim_id for r in report.results if not r.ok]
        assert not misses, f"claims out of band: {misses}"

    def test_counts(self, report):
        assert report.total == len(PAPER_CLAIMS)
        assert report.passed == report.total
        assert report.all_ok

    def test_render_mentions_every_claim(self, report):
        text = report.render()
        for claim in PAPER_CLAIMS:
            assert claim.claim_id in text
        assert f"{report.passed}/{report.total}" in text

    def test_out_of_band_detected(self, characterizer):
        bogus = Claim("C99", "none", "always fails", None, (5.0, 6.0),
                      lambda ch: 1.0)
        report = validate(characterizer, claims=[bogus])
        assert not report.all_ok
        assert "MISS" in report.render()
