"""Integration tests: fault injection, retries, recovery, speculation."""

from __future__ import annotations

import pytest

from repro.mapreduce.config import DEFAULT_CONF
from repro.mapreduce.driver import simulate_job
from repro.mapreduce.tasks import TaskAttemptError
from repro.obs import Tracer, check_job
from repro.sim.faults import FaultPlan, NodeFault

ATOM_NODES = ("atom0", "atom1", "atom2")


def _baseline(machine="atom", workload="wordcount", **kw):
    """Run a job with tracing on and its timeline invariant-checked.

    Every fault/recovery scenario in this file therefore validates the
    full interval set (capacity, crash clipping, uncore partition), not
    just the scalar outputs.
    """
    tracer = Tracer()
    result = simulate_job(machine, workload, obs=tracer, **kw)
    report = check_job(tracer.job)
    assert report.ok, report.render()
    return result


class TestQuietPlan:
    def test_quiet_plan_is_bit_identical_to_no_plan(self):
        base = _baseline()
        quiet = _baseline(fault_plan=FaultPlan(seed=3))
        assert quiet.execution_time_s == base.execution_time_s
        assert quiet.dynamic_energy_j == base.dynamic_energy_j
        assert quiet.phase_seconds == base.phase_seconds

    def test_zero_rate_plan_is_bit_identical(self):
        base = _baseline()
        plan = FaultPlan.with_crash_rate(11, ATOM_NODES, 0.0)
        assert plan.is_quiet
        r = _baseline(fault_plan=plan)
        assert r.execution_time_s == base.execution_time_s
        assert r.dynamic_energy_j == base.dynamic_energy_j

    def test_fault_runs_are_deterministic(self):
        plan = FaultPlan(seed=5, node_faults=(
            NodeFault("atom1", crash_at_s=40.0),), task_fail_prob=0.05)
        a = _baseline(fault_plan=plan)
        b = _baseline(fault_plan=plan)
        assert a.execution_time_s == b.execution_time_s
        assert a.dynamic_energy_j == b.dynamic_energy_j
        assert a.counters.map_attempts == b.counters.map_attempts

    def test_unknown_node_in_plan_rejected(self):
        plan = FaultPlan(node_faults=(NodeFault("nosuch9", crash_at_s=1.0),))
        with pytest.raises(ValueError, match="unknown node"):
            _baseline(fault_plan=plan)


class TestNodeCrash:
    def test_mid_map_crash_completes_on_survivors(self):
        base = _baseline()
        plan = FaultPlan(node_faults=(NodeFault("atom1", crash_at_s=60.0),))
        r = _baseline(fault_plan=plan)
        c = r.counters
        assert c.node_crashes == 1
        # The job finished, but strictly later and with re-executed work.
        assert r.execution_time_s > base.execution_time_s
        assert c.map_attempts > c.map_tasks
        assert c.wasted_task_seconds > 0
        assert 0 < r.recovery_overhead < 1
        assert r.wasted_task_seconds == c.wasted_task_seconds

    def test_crash_after_first_wave_loses_map_output(self):
        plan = FaultPlan(node_faults=(NodeFault("atom1", crash_at_s=60.0),))
        r = _baseline(fault_plan=plan)
        # By t=60 the first map wave on atom1 has committed; its output
        # dies with the node and those maps run again elsewhere.
        assert r.counters.lost_map_outputs > 0

    def test_crash_never_kills_last_survivor(self):
        plan = FaultPlan(node_faults=(
            NodeFault("atom0", crash_at_s=5.0),
            NodeFault("atom1", crash_at_s=6.0),
            NodeFault("atom2", crash_at_s=7.0),
        ))
        r = _baseline(fault_plan=plan, data_per_node_gb=0.25)
        assert r.counters.node_crashes == 2  # the third is spared
        assert r.execution_time_s > 0

    def test_degraded_disk_slows_job(self):
        # On the big core the disk (not the CPU-coupled I/O path) binds
        # the Sort data path, so a slow spindle must show up end to end.
        base = _baseline("xeon", "sort")
        plan = FaultPlan(node_faults=tuple(
            NodeFault(f"xeon{i}", disk_slowdown=8.0) for i in range(3)))
        r = _baseline("xeon", "sort", fault_plan=plan)
        assert r.execution_time_s > base.execution_time_s

    def test_degraded_compute_slows_job(self):
        base = _baseline()
        plan = FaultPlan(node_faults=tuple(
            NodeFault(n, compute_slowdown=3.0) for n in ATOM_NODES))
        r = _baseline(fault_plan=plan)
        assert r.execution_time_s > base.execution_time_s


class TestRetries:
    def test_transient_failures_are_retried_to_completion(self):
        plan = FaultPlan(seed=1, task_fail_prob=0.15)
        r = _baseline("xeon", "wordcount", fault_plan=plan,
                      data_per_node_gb=0.5)
        c = r.counters
        assert c.failed_attempts > 0
        assert c.map_attempts + c.reduce_attempts == (
            c.map_tasks + c.reduce_tasks + c.failed_attempts
            + c.killed_attempts)
        assert c.wasted_task_seconds > 0

    def test_exhausted_attempts_fail_job_with_cause_chain(self):
        plan = FaultPlan(seed=1, task_fail_prob=1.0)
        with pytest.raises(RuntimeError, match="job process failed") as info:
            _baseline("xeon", "wordcount", fault_plan=plan,
                      data_per_node_gb=0.25)
        cause = info.value.__cause__
        assert isinstance(cause, RuntimeError)
        assert "4/4 attempts" in str(cause)
        assert isinstance(cause.__cause__, TaskAttemptError)

    def test_max_attempts_is_configurable(self):
        plan = FaultPlan(seed=1, task_fail_prob=1.0)
        conf = DEFAULT_CONF.override(max_attempts=2, fault_plan=plan)
        with pytest.raises(RuntimeError) as info:
            simulate_job("xeon", "wordcount", conf=conf,
                         data_per_node_gb=0.25)
        assert "2/2 attempts" in str(info.value.__cause__)


class TestSpeculation:
    SLOW = FaultPlan(slow_tasks=(("s0.m0", 4.0),))

    def test_speculation_strictly_reduces_makespan(self):
        without = _baseline(fault_plan=self.SLOW)
        conf = DEFAULT_CONF.override(speculative_execution=True,
                                     fault_plan=self.SLOW)
        tracer = Tracer()
        with_spec = simulate_job("atom", "wordcount", conf=conf, obs=tracer)
        report = check_job(tracer.job)
        assert report.ok, report.render()
        assert with_spec.execution_time_s < without.execution_time_s
        c = with_spec.counters
        assert c.speculative_attempts >= 1
        assert c.speculative_wins >= 1
        assert c.killed_attempts >= 1  # the straggler lost the race

    def test_speculation_is_idle_on_healthy_runs(self):
        base = _baseline()
        conf = DEFAULT_CONF.override(speculative_execution=True)
        r = simulate_job("atom", "wordcount", conf=conf)
        assert r.counters.speculative_attempts == 0
        assert r.execution_time_s == base.execution_time_s
