"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_job_arguments(self):
        args = build_parser().parse_args(
            ["job", "--machine", "atom", "--workload", "sort",
             "--freq", "1.4", "--block-mb", "256", "--data-gb", "2"])
        assert args.machine == "atom"
        assert args.freq == pytest.approx(1.4)


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "F14" in out and "wordcount" in out

    def test_job(self, capsys):
        code = main(["job", "--machine", "xeon", "--workload", "wordcount",
                     "--data-gb", "0.5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "execution time" in out
        assert "EDP" in out

    def test_job_unknown_workload(self, capsys):
        assert main(["job", "--machine", "xeon",
                     "--workload", "nope"]) == 2

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "F99"]) == 2

    def test_run_single_experiment(self, capsys):
        assert main(["run", "F1"]) == 0
        out = capsys.readouterr().out
        assert "== F1" in out

    def test_run_is_case_insensitive(self, capsys):
        assert main(["run", "f1"]) == 0


class TestReport:
    def test_report_subset(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        from repro.analysis.report import generate_report
        from repro.core.characterization import Characterizer
        text = generate_report(Characterizer(), experiment_ids=["F1"],
                               include_validation=False)
        assert "## F1" in text
        assert "Avg_Hadoop" in text

    def test_report_unknown_id(self):
        from repro.analysis.report import generate_report
        import pytest
        with pytest.raises(KeyError):
            generate_report(experiment_ids=["F99"])

    def test_report_cli_writes_file(self, tmp_path, capsys, monkeypatch):
        target = tmp_path / "r.md"
        # Full report is slow; patch the registry down to one experiment.
        import repro.analysis.report as report_mod
        from repro.analysis.experiments import fig1_ipc
        monkeypatch.setattr(report_mod, "ALL_EXPERIMENTS", {"F1": fig1_ipc})
        assert main(["report", "-o", str(target)]) == 0
        assert target.exists()
        assert "F1" in target.read_text()
