"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_job_arguments(self):
        args = build_parser().parse_args(
            ["job", "--machine", "atom", "--workload", "sort",
             "--freq", "1.4", "--block-mb", "256", "--data-gb", "2"])
        assert args.machine == "atom"
        assert args.freq == pytest.approx(1.4)

    def test_run_perf_flags(self):
        args = build_parser().parse_args(
            ["run", "all", "--jobs", "4", "--no-cache"])
        assert args.jobs == 4
        assert args.no_cache is True
        assert args.cache_dir is None

    def test_perf_flag_defaults(self):
        args = build_parser().parse_args(["run", "F1"])
        assert args.jobs == 1 and args.no_cache is False

    def test_validate_accepts_perf_flags(self):
        args = build_parser().parse_args(
            ["validate", "-j", "2", "--cache-dir", "/tmp/x"])
        assert args.jobs == 2 and args.cache_dir == "/tmp/x"

    def test_cache_subcommand(self):
        args = build_parser().parse_args(["cache", "stats"])
        assert args.action == "stats"
        args = build_parser().parse_args(["cache", "clear", "--stale-only"])
        assert args.action == "clear" and args.stale_only is True

    def test_trace_arguments(self):
        args = build_parser().parse_args(
            ["trace", "terasort", "--machine", "xeon", "--data-gb", "10",
             "--crash", "xeon1:60", "--crash", "xeon2:90", "--check"])
        assert args.workload == "terasort"
        assert args.crash == ["xeon1:60", "xeon2:90"]
        assert args.check is True

    def test_trace_defaults(self):
        args = build_parser().parse_args(["trace", "wordcount"])
        assert args.machine == "atom"
        assert args.out == "trace-out"
        assert args.check is False and args.crash == []


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "F14" in out and "wordcount" in out

    def test_job(self, capsys):
        code = main(["job", "--machine", "xeon", "--workload", "wordcount",
                     "--data-gb", "0.5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "execution time" in out
        assert "EDP" in out

    def test_job_unknown_workload(self, capsys):
        assert main(["job", "--machine", "xeon",
                     "--workload", "nope"]) == 2

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "F99"]) == 2

    def test_run_single_experiment(self, capsys):
        assert main(["run", "F1"]) == 0
        out = capsys.readouterr().out
        assert "== F1" in out

    def test_run_is_case_insensitive(self, capsys):
        assert main(["run", "f1"]) == 0

    def test_run_with_cache_dir_warm_rerun(self, tmp_path, capsys):
        """A warm-cache rerun simulates zero cells (acceptance criterion)."""
        cache_dir = str(tmp_path / "cache")
        assert main(["run", "F1", "--cache-dir", cache_dir]) == 0
        first = capsys.readouterr()
        assert "simulated" in first.err
        assert main(["run", "F1", "--cache-dir", cache_dir]) == 0
        second = capsys.readouterr()
        assert "0 simulated" in second.err
        assert second.out == first.out  # cached output is bit-identical

    def test_run_no_cache_leaves_disk_alone(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        assert main(["run", "F1", "--no-cache",
                     "--cache-dir", str(cache_dir)]) == 0
        assert not cache_dir.exists()


class TestTraceCommand:
    def test_trace_writes_files_and_checks(self, tmp_path, capsys):
        outdir = tmp_path / "trace"
        code = main(["trace", "wordcount", "--machine", "atom",
                     "--data-gb", "0.0625", "--out", str(outdir), "--check"])
        assert code == 0
        out = capsys.readouterr().out
        assert "wrote" in out and "trace.json" in out
        assert "OK" in out
        assert (outdir / "trace.json").stat().st_size > 0
        assert (outdir / "timeline.csv").stat().st_size > 0
        assert (outdir / "summary.txt").stat().st_size > 0

    def test_trace_with_crash_passes_check(self, tmp_path, capsys):
        code = main(["trace", "wordcount", "--machine", "atom",
                     "--data-gb", "0.0625", "--crash", "atom1:30",
                     "--out", str(tmp_path / "t"), "--check"])
        assert code == 0
        assert "OK" in capsys.readouterr().out

    def test_trace_malformed_crash_spec(self, capsys):
        assert main(["trace", "wordcount", "--crash", "atom1"]) == 2
        assert main(["trace", "wordcount", "--crash", "atom1:soon"]) == 2

    def test_trace_unknown_workload(self, tmp_path, capsys):
        assert main(["trace", "nosuch", "--out", str(tmp_path / "t")]) == 2

    def test_trace_unknown_node_in_crash(self, tmp_path, capsys):
        code = main(["trace", "wordcount", "--crash", "nosuch9:5",
                     "--out", str(tmp_path / "t")])
        assert code == 2


class TestCacheCommand:
    def test_stats_on_empty(self, tmp_path, capsys):
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "entries (current): 0" in out
        assert "model fingerprint" in out

    def test_stats_after_run(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        main(["run", "F1", "--cache-dir", cache_dir])
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "entries (current): 0" not in out

    def test_clear(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        main(["run", "F1", "--cache-dir", cache_dir])
        capsys.readouterr()
        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        assert "removed" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        assert "entries (current): 0" in capsys.readouterr().out


class TestReport:
    def test_report_subset(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        from repro.analysis.report import generate_report
        from repro.core.characterization import Characterizer
        text = generate_report(Characterizer(), experiment_ids=["F1"],
                               include_validation=False)
        assert "## F1" in text
        assert "Avg_Hadoop" in text

    def test_report_unknown_id(self):
        from repro.analysis.report import generate_report
        import pytest
        with pytest.raises(KeyError):
            generate_report(experiment_ids=["F99"])

    def test_report_cli_writes_file(self, tmp_path, capsys, monkeypatch):
        target = tmp_path / "r.md"
        # Full report is slow; patch the registry down to one experiment.
        import repro.analysis.report as report_mod
        from repro.analysis.experiments import fig1_ipc
        monkeypatch.setattr(report_mod, "ALL_EXPERIMENTS", {"F1": fig1_ipc})
        assert main(["report", "-o", str(target)]) == 0
        assert target.exists()
        assert "F1" in target.read_text()


class TestDatacenterCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["datacenter"])
        assert args.nodes == 200 and args.rack_size == 16
        assert args.policy is None and args.goal == "EDP"
        assert args.num_jobs == 60 and args.seed == 0
        assert args.trace is None and args.export is None

    def test_parser_rejects_unknown_policy(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["datacenter", "--policy", "random"])

    def test_small_run_exports_csv(self, tmp_path, capsys):
        out = tmp_path / "dc"
        code = main(["datacenter", "--nodes", "16", "--rack-size", "8",
                     "--num-jobs", "3", "--rate", "300", "--seed", "3",
                     "--policy", "fifo", "--no-cache",
                     "--export", str(out)])
        assert code == 0
        text = capsys.readouterr().out
        assert "cluster_edp" in text
        assert (out / "DC_summary.csv").exists()
        assert (out / "DC_jobs.csv").exists()

    def test_trace_replay_round_trip(self, tmp_path, capsys):
        from repro.cluster.arrivals import ArrivalConfig, poisson_stream, \
            trace_csv
        stream = poisson_stream(ArrivalConfig(
            seed=3, n_jobs=3, jobs_per_1000s=300.0, node_choices=(2,),
            size_choices_gb=(0.25,)))
        trace = tmp_path / "trace.csv"
        trace.write_text(trace_csv(stream))
        code = main(["datacenter", "--nodes", "8", "--rack-size", "4",
                     "--policy", "fifo", "--no-cache",
                     "--trace", str(trace)])
        assert code == 0
        assert "3 jobs" in capsys.readouterr().out

    def test_missing_trace_file_is_clean_error(self, capsys):
        code = main(["datacenter", "--trace", "/nonexistent/trace.csv"])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_bad_trace_content_is_clean_error(self, tmp_path, capsys):
        trace = tmp_path / "bad.csv"
        trace.write_text("not,a,trace\n")
        code = main(["datacenter", "--trace", str(trace), "--no-cache"])
        assert code == 2
        assert "header" in capsys.readouterr().err


class TestServeLoadtestCommands:
    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1" and args.port == 8008
        assert args.workers == 2 and args.queue_limit == 128
        assert args.no_cache is False

    def test_loadtest_parser_defaults(self):
        args = build_parser().parse_args(["loadtest"])
        assert args.requests == 200 and args.concurrency == 32
        assert args.seed == 0 and args.mode == "closed"
        assert args.spawn is False and args.dry_run is False

    def test_serve_rejects_bad_config(self, capsys):
        code = main(["serve", "--workers", "0"])
        assert code == 2
        assert "workers" in capsys.readouterr().err

    def test_loadtest_dry_run_is_deterministic(self, capsys):
        assert main(["loadtest", "--dry-run", "--seed", "9",
                     "--requests", "20"]) == 0
        first = capsys.readouterr().out
        assert main(["loadtest", "--dry-run", "--seed", "9",
                     "--requests", "20"]) == 0
        second = capsys.readouterr().out
        assert first == second
        assert len(first.splitlines()) == 20
        assert main(["loadtest", "--dry-run", "--seed", "10",
                     "--requests", "20"]) == 0
        assert capsys.readouterr().out != first

    def test_loadtest_spawn_end_to_end(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        code = main(["loadtest", "--spawn", "--requests", "16",
                     "--concurrency", "8", "--seed", "3",
                     "--cache-dir", str(tmp_path / "cache"),
                     "--out", str(out),
                     "--require-cache-hits", "0"])
        assert code == 0, capsys.readouterr().err
        text = capsys.readouterr().out
        assert "latency p50/p95/p99" in text
        assert out.exists()
        import json
        payload = json.loads(out.read_text())
        assert payload["report"]["requests"] == 16
        assert payload["report"]["errors"] == 0
        assert payload["config"]["seed"] == 3

    def test_loadtest_unreachable_server_fails_cleanly(self, capsys):
        # Nothing listens on this port: every request is a transport
        # error, which must exit 1 (gate) without a traceback.
        code = main(["loadtest", "--host", "127.0.0.1", "--port", "1",
                     "--requests", "2", "--concurrency", "1",
                     "--timeout", "2"])
        assert code == 1
        assert "errors" in capsys.readouterr().err
