"""HTTP-layer tests: parsing, canonical responses, keep-alive, errors."""

import asyncio
import json

import pytest

from repro.serve.http import (BadRequest, HTTPServer, Request, Response,
                              read_request)


def _parse(data: bytes):
    async def main():
        reader = asyncio.StreamReader()   # needs a running event loop
        reader.feed_data(data)
        reader.feed_eof()
        return await read_request(reader)
    return asyncio.run(main())


class TestReadRequest:
    def test_basic_post(self):
        req = _parse(b"POST /simulate?x=1 HTTP/1.1\r\n"
                     b"Host: h\r\nContent-Length: 2\r\n\r\n{}")
        assert req.method == "POST"
        assert req.path == "/simulate"
        assert req.query == {"x": "1"}
        assert req.body == b"{}"
        assert req.headers["host"] == "h"

    def test_get_without_body(self):
        req = _parse(b"GET /healthz HTTP/1.1\r\n\r\n")
        assert req.method == "GET"
        assert req.path == "/healthz"
        assert req.body == b""

    def test_clean_eof_returns_none(self):
        assert _parse(b"") is None

    def test_truncated_head_raises(self):
        with pytest.raises(BadRequest):
            _parse(b"POST /simulate HTT")

    def test_malformed_request_line(self):
        with pytest.raises(BadRequest):
            _parse(b"BANANAS\r\n\r\n")

    def test_malformed_header(self):
        with pytest.raises(BadRequest):
            _parse(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n")

    def test_bad_content_length(self):
        with pytest.raises(BadRequest):
            _parse(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n")

    def test_negative_content_length(self):
        with pytest.raises(BadRequest):
            _parse(b"POST / HTTP/1.1\r\nContent-Length: -5\r\n\r\n")

    def test_oversized_body_is_413(self):
        with pytest.raises(BadRequest) as err:
            _parse(b"POST / HTTP/1.1\r\n"
                   b"Content-Length: 99999999\r\n\r\n")
        assert err.value.status == 413

    def test_truncated_body(self):
        with pytest.raises(BadRequest):
            _parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc")

    def test_chunked_rejected_as_501(self):
        with pytest.raises(BadRequest) as err:
            _parse(b"POST / HTTP/1.1\r\n"
                   b"Transfer-Encoding: chunked\r\n\r\n")
        assert err.value.status == 501

    def test_json_body_helper(self):
        req = Request("POST", "/x", {}, {}, b'{"a": 1}')
        assert req.json_body() == {"a": 1}
        bad = Request("POST", "/x", {}, {}, b"{nope")
        with pytest.raises(BadRequest):
            bad.json_body()


class TestResponse:
    def test_canonical_json_is_sorted_and_compact(self):
        r = Response.json({"b": 1, "a": [1, 2]})
        assert r.body == b'{"a":[1,2],"b":1}'

    def test_encode_roundtrip(self):
        raw = Response.json({"x": 1}).encode(keep_alive=True)
        assert raw.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Content-Length: 7\r\n" in raw
        assert b"Connection: keep-alive" in raw
        assert raw.endswith(b'{"x":1}')

    def test_error_body_carries_status(self):
        r = Response.error(429, "slow down",
                           headers=(("Retry-After", "1"),))
        payload = json.loads(r.body)
        assert payload["status"] == 429
        assert ("Retry-After", "1") in r.headers


class TestServer:
    """Round-trips over a real loopback socket."""

    def _run(self, handler, client):
        async def main():
            server = HTTPServer(handler)
            port = await server.start("127.0.0.1", 0)
            try:
                return await client(port)
            finally:
                await server.close()
        return asyncio.run(main())

    def test_echo_and_keep_alive(self):
        async def handler(request):
            return Response.json({"path": request.path})

        async def client(port):
            reader, writer = await asyncio.open_connection("127.0.0.1",
                                                           port)
            out = []
            for path in ("/a", "/b"):           # same connection, twice
                writer.write(f"GET {path} HTTP/1.1\r\n\r\n"
                             .encode("ascii"))
                await writer.drain()
                head = await reader.readuntil(b"\r\n\r\n")
                length = int([ln.split(b":")[1] for ln in
                              head.split(b"\r\n")
                              if ln.lower().startswith(b"content-length")
                              ][0])
                out.append(json.loads(await reader.readexactly(length)))
            writer.close()
            return out

        assert self._run(handler, client) == [{"path": "/a"},
                                              {"path": "/b"}]

    def test_handler_exception_maps_to_500(self):
        async def handler(request):
            raise RuntimeError("boom")

        async def client(port):
            reader, writer = await asyncio.open_connection("127.0.0.1",
                                                           port)
            writer.write(b"GET / HTTP/1.1\r\n\r\n")
            await writer.drain()
            status = (await reader.readline()).split(b" ")[1]
            writer.close()
            return status

        assert self._run(handler, client) == b"500"

    def test_malformed_request_gets_400_and_close(self):
        async def handler(request):  # pragma: no cover - never reached
            return Response.json({})

        async def client(port):
            reader, writer = await asyncio.open_connection("127.0.0.1",
                                                           port)
            writer.write(b"NOT A REQUEST\r\n\r\n")
            await writer.drain()
            status = (await reader.readline()).split(b" ")[1]
            writer.close()
            return status

        assert self._run(handler, client) == b"400"
