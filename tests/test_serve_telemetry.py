"""Request telemetry through the live serve stack.

The acceptance surface of the third observability pillar: a scraped
``/metrics`` passes the strict exposition parser, a computed request's
trace carries coalesce-wait / queue-wait / pool-execution spans, trace
ids survive the process-pool round-trip, shed and timeout produce
request-id-correlated structured log lines, and — the zero-cost rule —
simulate bodies are byte-identical with telemetry on and off.
"""

import asyncio
import io
import json

import pytest

from repro.core.characterization import RunKey
from repro.loadgen.client import _Connection, fetch_traces
from repro.mapreduce.config import DEFAULT_CONF
from repro.obs import reqtrace, slog
from repro.obs.registry import parse_exposition
from repro.serve.run import start_stack, stop_stack
from repro.serve.service import (RequestTimeout, ServiceConfig,
                                 SimulationService)
from repro.serve.work import simulate_batch

KEY = RunKey(machine="atom", workload="wordcount", freq_ghz=1.2,
             data_per_node_gb=0.05, n_nodes=2)
BODY = json.dumps({"machine": "atom", "workload": "wordcount",
                   "freq_ghz": 1.2, "data_per_node_gb": 0.05,
                   "n_nodes": 2})


def _config(tmp_path, **overrides):
    base = dict(workers=1, queue_limit=32, shards=2,
                cache_dir=str(tmp_path / "cache"))
    base.update(overrides)
    return ServiceConfig(**base)


async def _with_stack(config, fn):
    handle = await start_stack(config)
    conn = _Connection(handle.host, handle.port)
    try:
        return await fn(handle, conn)
    finally:
        conn.close()
        await stop_stack(handle, graceful=False)


def _span_names(trace_doc):
    return {s["name"] for s in trace_doc["spans"]}


def _spans(trace_doc, name):
    return [s for s in trace_doc["spans"] if s["name"] == name]


# -- /metrics conformance ---------------------------------------------------

def test_metrics_pass_the_conformance_parser_after_traffic(tmp_path):
    async def scenario(handle, conn):
        await conn.request("POST", "/simulate", BODY)
        await conn.request("POST", "/simulate", BODY)       # cache hit
        await conn.request("GET", "/healthz")
        await conn.request("GET", "/nope")                  # 404 counted
        return await conn.request("GET", "/metrics")

    status, body = asyncio.run(_with_stack(_config(tmp_path), scenario))
    assert status == 200
    families = parse_exposition(body.decode("utf-8"))
    assert families["repro_requests_total"]["type"] == "counter"
    assert families["repro_request_latency_seconds"]["type"] == "histogram"
    assert families["repro_cache_hits_total"]["samples"][0][2] >= 1
    names = {s[0] for s in
             families["repro_request_latency_seconds"]["samples"]}
    assert "repro_request_latency_seconds_sum" in names
    assert "repro_request_latency_seconds_count" in names
    assert b"quantile=" not in body


# -- the trace of one computed request --------------------------------------

def test_computed_request_has_the_full_span_chain(tmp_path):
    async def scenario(handle, conn):
        status, _body = await conn.request("POST", "/simulate", BODY)
        request_id = conn.last_headers.get("x-repro-request-id")
        d_status, d_body = await conn.request("GET", "/debug/requests")
        return status, request_id, d_status, json.loads(d_body)

    status, request_id, d_status, doc = asyncio.run(
        _with_stack(_config(tmp_path), scenario))
    assert status == 200 and d_status == 200
    assert request_id
    (trace,) = [t for t in doc["traces"] if t["id"] == request_id]
    assert trace["route"] == "/simulate"
    assert trace["status"] == 200
    assert {"http.parse", "route", "cache.get", "coalesce.wait",
            "queue.wait", "pool.execute", "cache.store"} \
        <= _span_names(trace)
    # The admitting request's coalesce.wait is the joined=False side,
    # and its pool-execution window carries its own id as the tag.
    (wait,) = _spans(trace, "coalesce.wait")
    assert wait["meta"] == {"joined": False}
    (pool,) = _spans(trace, "pool.execute")
    assert pool["meta"]["tag"] == request_id
    assert pool["meta"]["batch"] == 1
    (route,) = _spans(trace, "route")
    assert route["meta"] == {"handler": "simulate"}


def test_trace_ids_survive_the_process_pool_roundtrip():
    triples = simulate_batch([KEY, KEY], DEFAULT_CONF,
                             tags=("id-a", "id-b"))
    assert [t[2] for t in triples] == ["id-a", "id-b"]
    pairs = simulate_batch([KEY], DEFAULT_CONF)
    assert len(pairs[0]) == 2
    # Tags are pass-through only: results identical with and without.
    assert triples[0][1].execution_time_s == pairs[0][1].execution_time_s
    assert triples[0][1].dynamic_energy_j == pairs[0][1].dynamic_energy_j
    with pytest.raises(ValueError):
        simulate_batch([KEY], DEFAULT_CONF, tags=("a", "b"))


def test_coalesced_requests_get_their_own_traces(tmp_path):
    async def run():
        service = SimulationService(_config(tmp_path))
        await service.start()
        try:
            tel = service.telemetry

            async def one():
                trace = tel.start("/simulate", "POST")
                with reqtrace.use(trace):
                    await service.submit(KEY)
                tel.finish(trace, 200)

            await asyncio.gather(*(one() for _ in range(4)))
            return [t.to_dict() for t in tel.recent()]
        finally:
            await service.stop()

    docs = asyncio.run(run())
    assert len(docs) == 4

    def joined_flags(doc):
        return [s["meta"]["joined"] for s in _spans(doc, "coalesce.wait")]

    owners = [d for d in docs if joined_flags(d) == [False]]
    riders = [d for d in docs if joined_flags(d) == [True]]
    assert len(owners) == 1 and len(riders) == 3
    # Only the owning request carries the pool-execution window; the
    # riders spent their whole service time in coalesce.wait.
    assert _spans(owners[0], "pool.execute")
    assert all(not _spans(d, "pool.execute") for d in riders)
    assert all(not _spans(d, "cache.get") for d in riders)


# -- debug endpoints --------------------------------------------------------

def test_debug_requests_chrome_download_and_limits(tmp_path):
    async def scenario(handle, conn):
        for _ in range(3):
            await conn.request("POST", "/simulate", BODY)
        chrome = await conn.request("GET", "/debug/requests?format=chrome")
        disposition = conn.last_headers.get("content-disposition", "")
        limited = await conn.request("GET", "/debug/requests?limit=1")
        bad = await conn.request("GET", "/debug/requests?limit=zero")
        fetched = await fetch_traces(handle.host, handle.port)
        return chrome, disposition, limited, bad, fetched

    chrome, disposition, limited, bad, fetched = asyncio.run(
        _with_stack(_config(tmp_path), scenario))
    assert chrome[0] == 200
    assert "attachment" in disposition
    doc = json.loads(chrome[1])
    assert any(e.get("cat") == "request" for e in doc["traceEvents"])
    assert len(json.loads(limited[1])["traces"]) == 1
    assert bad[0] == 400
    assert fetched is not None and json.loads(fetched)["traceEvents"]


def test_debug_inflight_shows_the_probing_request(tmp_path):
    async def scenario(handle, conn):
        return await conn.request("GET", "/debug/inflight")

    status, body = asyncio.run(_with_stack(_config(tmp_path), scenario))
    assert status == 200
    doc = json.loads(body)
    # The probing GET itself is the one open trace at snapshot time.
    assert doc["inflight"] == 1
    assert doc["traces"][0]["route"] == "/debug/inflight"
    assert doc["traces"][0]["status"] is None


def test_ring_bounds_completed_traces_under_load(tmp_path):
    async def scenario(handle, conn):
        for _ in range(9):
            await conn.request("GET", "/healthz")
        status, body = await conn.request("GET", "/debug/requests")
        return status, json.loads(body)

    status, doc = asyncio.run(
        _with_stack(_config(tmp_path, trace_ring=4), scenario))
    assert status == 200
    assert doc["ring_size"] == 4
    assert len(doc["traces"]) == 4
    assert doc["completed"] == 9
    assert doc["evicted"] == 5
    # Newest first: the ring kept only the most recent sequence numbers.
    seqs = [int(t["id"].rsplit("-", 1)[1]) for t in doc["traces"]]
    assert seqs == sorted(seqs, reverse=True)


# -- telemetry off: 404s, no header, byte-identical bodies ------------------

def test_telemetry_off_disables_debug_endpoints_and_header(tmp_path):
    async def scenario(handle, conn):
        sim = await conn.request("POST", "/simulate", BODY)
        header = conn.last_headers.get("x-repro-request-id")
        debug = await conn.request("GET", "/debug/requests")
        inflight = await conn.request("GET", "/debug/inflight")
        return sim, header, debug, inflight

    sim, header, debug, inflight = asyncio.run(
        _with_stack(_config(tmp_path, telemetry=False), scenario))
    assert sim[0] == 200
    assert header is None
    assert debug[0] == 404 and inflight[0] == 404


def test_simulate_bodies_byte_identical_with_telemetry_on_and_off(tmp_path):
    compare_body = json.dumps({"workload": "wordcount", "freq_ghz": 1.2,
                               "data_per_node_gb": 0.05, "n_nodes": 2})

    def bodies(telemetry, cache_dir):
        async def scenario(handle, conn):
            out = []
            for path, body in (("/simulate", BODY),
                               ("/simulate", BODY),    # cache-hit path
                               ("/compare", compare_body)):
                status, data = await conn.request("POST", path, body)
                assert status == 200
                out.append(data)
            return out

        config = ServiceConfig(workers=1, queue_limit=32, shards=2,
                               cache_dir=cache_dir, telemetry=telemetry)
        return asyncio.run(_with_stack(config, scenario))

    assert bodies(True, str(tmp_path / "cache-on")) \
        == bodies(False, str(tmp_path / "cache-off"))


# -- structured logging of shed / timeout -----------------------------------

def test_shed_emits_log_line_with_request_id(tmp_path, monkeypatch):
    sink = io.StringIO()
    slog.install(sink=sink)
    try:
        async def scenario(handle, conn):
            # Pretend the admission queue is at its limit.
            monkeypatch.setattr(handle.service, "_admitted",
                                handle.service.config.queue_limit)
            status, _ = await conn.request("POST", "/simulate", BODY)
            return status, conn.last_headers.get("x-repro-request-id")

        status, request_id = asyncio.run(
            _with_stack(_config(tmp_path), scenario))
    finally:
        slog.uninstall()

    assert status == 429
    assert request_id
    events = [json.loads(line) for line in sink.getvalue().splitlines()]
    (shed,) = [e for e in events if e["event"] == "request.shed"]
    assert shed["request_id"] == request_id
    assert shed["route"] == "/simulate"
    assert shed["queue_limit"] == 32


def test_timeout_emits_log_line_with_request_id(tmp_path):
    sink = io.StringIO()
    slog.install(sink=sink)
    try:
        async def scenario(handle, conn):
            async def deadline_blown(key):
                raise RequestTimeout("no result within 0.05s")

            handle.service.submit = deadline_blown
            status, _ = await conn.request("POST", "/simulate", BODY)
            return status, conn.last_headers.get("x-repro-request-id")

        status, request_id = asyncio.run(
            _with_stack(_config(tmp_path), scenario))
    finally:
        slog.uninstall()

    assert status == 504
    assert request_id
    events = [json.loads(line) for line in sink.getvalue().splitlines()]
    (timeout,) = [e for e in events if e["event"] == "request.timeout"]
    assert timeout["request_id"] == request_id
    assert timeout["route"] == "/simulate"
    assert timeout["timeout_s"] == pytest.approx(30.0)
