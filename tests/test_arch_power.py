"""Unit tests for the power model and energy integration."""

from __future__ import annotations

import pytest

from repro.arch.dvfs import OperatingPoint
from repro.arch.power import (EnergyBreakdown, NodePower, PowerSpec,
                              integrate_energy)
from repro.sim.trace import Interval, TraceRecorder


def _spec(**overrides):
    params = dict(base_watts=20.0, core_dynamic_coeff=2.0,
                  core_static_uplift=1.0, disk_active_uplift=5.0,
                  nic_active_uplift=2.0, idle_voltage=0.8,
                  job_active_uplift=3.0)
    params.update(overrides)
    return PowerSpec(**params)


def _power(freq_ghz=2.0, voltage=1.0):
    return NodePower(_spec(), OperatingPoint(freq_ghz * 1e9, voltage))


class TestPowerSpec:
    def test_negative_coefficient_rejected(self):
        with pytest.raises(ValueError):
            _spec(base_watts=-1.0)


class TestNodePower:
    def test_core_uplift_formula(self):
        power = _power(freq_ghz=2.0, voltage=1.0)
        # dyn = 2.0 * 1.0^2 * 2.0 * act; static = 1.0 * (1.0 - 0.8)
        assert power.core_uplift(1.0) == pytest.approx(4.0 + 0.2)
        assert power.core_uplift(0.5) == pytest.approx(2.0 + 0.2)

    def test_activity_validated(self):
        with pytest.raises(ValueError):
            _power().core_uplift(1.5)

    def test_device_uplifts(self):
        power = _power()
        for device, expected in (("disk", 5.0), ("nic", 2.0),
                                 ("uncore", 3.0)):
            iv = Interval(0, 1, "n", device, "k")
            assert power.interval_uplift(iv) == pytest.approx(expected)

    def test_fw_uses_fw_activity(self):
        power = _power()
        iv = Interval(0, 1, "n", "fw", "k")
        assert power.interval_uplift(iv) == pytest.approx(
            power.core_uplift(0.3))

    def test_unknown_device_rejected(self):
        with pytest.raises(ValueError):
            _power().interval_uplift(Interval(0, 1, "n", "gpu", "k"))

    def test_idle_is_base(self):
        assert _power().idle_watts == pytest.approx(20.0)


class TestIntegrateEnergy:
    def _trace(self):
        tr = TraceRecorder()
        tr.add(0, 10, "n0", "disk", "read", phase="map")
        tr.add(0, 4, "n0", "core", "compute", activity=1.0, phase="map")
        tr.add(10, 14, "n0", "nic", "shuffle", phase="reduce")
        return tr

    def test_hand_computed_total(self):
        power = _power(freq_ghz=2.0, voltage=1.0)
        breakdown = integrate_energy(self._trace(), {"n0": power},
                                     makespan=14.0)
        expected = (10 * 5.0          # disk
                    + 4 * (4.0 + 0.2)  # core at activity 1
                    + 4 * 2.0)         # nic
        assert breakdown.dynamic_joules == pytest.approx(expected)

    def test_phase_attribution(self):
        breakdown = integrate_energy(self._trace(), {"n0": _power()},
                                     makespan=14.0)
        assert breakdown.phase_energy("map") == pytest.approx(
            10 * 5.0 + 4 * 4.2)
        assert breakdown.phase_energy("reduce") == pytest.approx(8.0)
        assert breakdown.phase_energy("other") == 0.0

    def test_device_and_node_attribution(self):
        breakdown = integrate_energy(self._trace(), {"n0": _power()},
                                     makespan=14.0)
        assert breakdown.by_device["disk"] == pytest.approx(50.0)
        assert breakdown.by_node["n0"] == breakdown.dynamic_joules

    def test_average_dynamic_watts(self):
        breakdown = integrate_energy(self._trace(), {"n0": _power()},
                                     makespan=14.0)
        assert breakdown.average_dynamic_watts == pytest.approx(
            breakdown.dynamic_joules / 14.0)

    def test_total_includes_idle_floor(self):
        breakdown = integrate_energy(self._trace(), {"n0": _power()},
                                     makespan=14.0)
        assert breakdown.total_joules == pytest.approx(
            breakdown.dynamic_joules + 20.0 * 14.0)

    def test_makespan_defaults_to_span(self):
        breakdown = integrate_energy(self._trace(), {"n0": _power()})
        assert breakdown.makespan == pytest.approx(14.0)

    def test_empty_trace(self):
        breakdown = integrate_energy(TraceRecorder(), {"n0": _power()})
        assert breakdown.dynamic_joules == 0.0
        assert breakdown.average_dynamic_watts == 0.0
