"""Calibration tests: the paper's shape targets, asserted.

Each test pins one qualitative (and where the paper gives numbers, loose
quantitative) claim from the evaluation section.  These are the contract
between the model and the paper — if a refactor breaks one of these, the
reproduction no longer reproduces.  DESIGN.md §4 lists the sources.
"""

from __future__ import annotations

import pytest

from repro.arch.presets import ATOM_C2758, XEON_E5_2420
from repro.core.characterization import Characterizer, RunKey
from repro.core.metrics import edxp
from repro.workloads.base import MICRO_BENCHMARKS, REAL_WORLD
from repro.workloads.traditional import PARSEC_21, SPEC_CPU2006, suite_average_ipc

FREQS = (1.2, 1.4, 1.6, 1.8)


def _gb(wl: str) -> float:
    return 10.0 if wl in REAL_WORLD else 1.0


def _edp(result, x=1):
    return edxp(result.dynamic_energy_j, result.execution_time_s, x)


def _phase_edp(result, phase):
    return edxp(result.phase_energy(phase), result.phase_time(phase), 1)


@pytest.fixture(scope="module")
def ch():
    return Characterizer()


def _pair(ch, wl, **kw):
    kw.setdefault("data_per_node_gb", _gb(wl))
    atom = ch.run(RunKey("atom", wl, **kw))
    xeon = ch.run(RunKey("xeon", wl, **kw))
    return atom, xeon


class TestFig1IpcTargets:
    def test_suite_ipcs_near_paper(self):
        spec_x = suite_average_ipc(XEON_E5_2420, SPEC_CPU2006)
        spec_a = suite_average_ipc(ATOM_C2758, SPEC_CPU2006)
        assert 1.3 <= spec_x <= 1.9
        assert 0.6 <= spec_a <= 1.0

    def test_hadoop_ipc_below_traditional(self, ch):
        """Hadoop IPC ~2.16x below SPEC on big core, ~1.55x on little."""
        spec_x = suite_average_ipc(XEON_E5_2420, SPEC_CPU2006)
        spec_a = suite_average_ipc(ATOM_C2758, SPEC_CPU2006)
        jobs = [_pair(ch, wl) for wl in MICRO_BENCHMARKS + REAL_WORLD]
        hadoop_a = sum(a.ipc for a, _x in jobs) / len(jobs)
        hadoop_x = sum(x.ipc for _a, x in jobs) / len(jobs)
        assert 1.6 <= spec_x / hadoop_x <= 2.7   # paper: 2.16
        assert 1.2 <= spec_a / hadoop_a <= 2.2   # paper: 1.55

    def test_xeon_atom_hadoop_ipc_gap(self, ch):
        """Paper: little core ~1.43x lower IPC on Hadoop code."""
        jobs = [_pair(ch, wl) for wl in MICRO_BENCHMARKS + REAL_WORLD]
        ratio = (sum(x.ipc for _a, x in jobs)
                 / sum(a.ipc for a, _x in jobs))
        assert 1.2 <= ratio <= 2.0

    def test_drop_bigger_on_big_core(self, ch):
        """The IPC collapse from SPEC to Hadoop is worse on Xeon."""
        spec_x = suite_average_ipc(XEON_E5_2420, SPEC_CPU2006)
        spec_a = suite_average_ipc(ATOM_C2758, SPEC_CPU2006)
        jobs = [_pair(ch, wl) for wl in MICRO_BENCHMARKS]
        hadoop_a = sum(a.ipc for a, _x in jobs) / len(jobs)
        hadoop_x = sum(x.ipc for _a, x in jobs) / len(jobs)
        assert spec_x / hadoop_x > spec_a / hadoop_a


class TestFig3ExecutionTimeTargets:
    def test_xeon_always_faster(self, ch):
        for wl in MICRO_BENCHMARKS + REAL_WORLD:
            atom, xeon = _pair(ch, wl)
            assert atom.execution_time_s > xeon.execution_time_s, wl

    def test_speedup_bands(self, ch):
        """Paper averages: WC 1.74x, GP 1.39x, TS 1.57x; Sort is the
        outlier (reported 15.4x; we reproduce a >4x gap, see
        EXPERIMENTS.md for the magnitude discussion)."""
        bands = {"wordcount": (1.3, 2.2), "grep": (1.2, 2.2),
                 "terasort": (1.3, 2.3), "sort": (4.0, 10.0)}
        for wl, (lo, hi) in bands.items():
            atom, xeon = _pair(ch, wl)
            ratio = atom.execution_time_s / xeon.execution_time_s
            assert lo <= ratio <= hi, (wl, ratio)

    def test_atom_more_frequency_sensitive_on_io(self, ch):
        """Sort/TeraSort: the little core gains more from frequency."""
        for wl in ("sort", "terasort"):
            a12, x12 = _pair(ch, wl, freq_ghz=1.2)
            a18, x18 = _pair(ch, wl, freq_ghz=1.8)
            atom_gain = a12.execution_time_s / a18.execution_time_s
            xeon_gain = x12.execution_time_s / x18.execution_time_s
            assert atom_gain > xeon_gain, wl

    def test_frequency_gains_in_paper_band(self, ch):
        """Paper: up to 31.5% (Xeon) and 44.6% (Atom) from 1.2->1.8."""
        for wl in MICRO_BENCHMARKS:
            for machine in ("atom", "xeon"):
                slow = ch.run(RunKey(machine, wl, freq_ghz=1.2))
                fast = ch.run(RunKey(machine, wl, freq_ghz=1.8))
                gain = 1 - fast.execution_time_s / slow.execution_time_s
                assert 0.08 <= gain <= 0.45, (wl, machine, gain)

    def test_block_sweet_spot_for_compute(self, ch):
        """WC: faster up to 256 MB, sharply slower at 512 MB (§3.1.1)."""
        for machine in ("atom", "xeon"):
            times = {b: ch.run(RunKey(machine, "wordcount",
                                      block_size_mb=b)).execution_time_s
                     for b in (32.0, 64.0, 128.0, 256.0, 512.0)}
            assert times[256.0] < times[64.0] < times[32.0]
            assert times[512.0] > times[256.0] * 1.2

    def test_real_apps_flat_beyond_256(self, ch):
        """NB/FP: 256 MB near-optimal; beyond it negligible change."""
        for wl in REAL_WORLD:
            t256 = ch.run(RunKey("xeon", wl, block_size_mb=256.0,
                                 data_per_node_gb=10.0)).execution_time_s
            t64 = ch.run(RunKey("xeon", wl, block_size_mb=64.0,
                                data_per_node_gb=10.0)).execution_time_s
            t512 = ch.run(RunKey("xeon", wl, block_size_mb=512.0,
                                 data_per_node_gb=10.0)).execution_time_s
            assert t256 < t64
            assert abs(t512 - t256) / t256 < 0.15


class TestFig56EdpTargets:
    def test_atom_wins_edp_except_sort(self, ch):
        for wl in MICRO_BENCHMARKS + REAL_WORLD:
            atom, xeon = _pair(ch, wl)
            ratio = _edp(atom) / _edp(xeon)
            if wl == "sort":
                assert ratio > 2.0, "Sort must favour the big core"
            else:
                assert ratio < 1.0, (wl, ratio)

    def test_edp_falls_with_frequency(self, ch):
        """Figs. 5/6: higher frequency lowers whole-app EDP."""
        for wl in ("wordcount", "grep", "naive_bayes"):
            for machine in ("atom", "xeon"):
                slow = ch.run(RunKey(machine, wl, freq_ghz=1.2,
                                     block_size_mb=512.0,
                                     data_per_node_gb=_gb(wl)))
                fast = ch.run(RunKey(machine, wl, freq_ghz=1.8,
                                     block_size_mb=512.0,
                                     data_per_node_gb=_gb(wl)))
                assert _edp(fast) <= _edp(slow) * 1.02, (wl, machine)


class TestFig78PhaseTargets:
    def test_map_phase_prefers_atom(self, ch):
        """Every app with a real compute map favours Atom for the map
        phase.  Sort is excluded: its 'map phase' is the whole I/O-bound
        job, which favours the big core like the app itself does."""
        for wl in MICRO_BENCHMARKS + REAL_WORLD:
            if wl == "sort":
                continue
            atom, xeon = _pair(ch, wl)
            assert _phase_edp(atom, "map") < _phase_edp(xeon, "map"), wl

    def test_reduce_prefers_xeon_for_nb_and_grep(self, ch):
        """§3.2.2: 'reduce phase prefers Xeon in several cases;
        examples are NB and GP'."""
        for wl in ("naive_bayes", "grep", "terasort"):
            atom, xeon = _pair(ch, wl)
            assert (_phase_edp(atom, "reduce")
                    > _phase_edp(xeon, "reduce")), wl

    def test_reduce_prefers_atom_for_wordcount(self, ch):
        atom, xeon = _pair(ch, "wordcount")
        assert _phase_edp(atom, "reduce") < _phase_edp(xeon, "reduce")

    def test_opposite_reduce_trend_exists(self, ch):
        """§3.2.2: the reduce phase does not benefit from frequency the
        way the map phase does.  We assert the weak form the model
        reproduces: for at least one memory-bound reduce the EDP is
        within 10% of flat across the whole 1.2-1.8 GHz sweep (the map
        phase, by contrast, improves by >25%)."""
        near_flat = False
        for wl in ("naive_bayes", "grep", "terasort"):
            for machine in ("atom", "xeon"):
                slow = ch.run(RunKey(machine, wl, freq_ghz=1.2,
                                     block_size_mb=512.0,
                                     data_per_node_gb=_gb(wl)))
                fast = ch.run(RunKey(machine, wl, freq_ghz=1.8,
                                     block_size_mb=512.0,
                                     data_per_node_gb=_gb(wl)))
                if _phase_edp(slow, "reduce") <= 1.1 * _phase_edp(
                        fast, "reduce"):
                    near_flat = True
        assert near_flat


class TestFig9BlockGapTargets:
    def test_gap_grows_with_block_size_for_wordcount(self, ch):
        ratios = []
        for block in (32.0, 512.0):
            atom, xeon = _pair(ch, "wordcount", block_size_mb=block)
            ratios.append(_edp(xeon) / _edp(atom))
        assert ratios[1] > ratios[0]

    def test_gap_above_unity_except_sort(self, ch):
        for wl in ("wordcount", "grep", "terasort"):
            atom, xeon = _pair(ch, wl, block_size_mb=512.0)
            assert _edp(xeon) / _edp(atom) > 1.0, wl


class TestFig10to13DataSizeTargets:
    def test_time_grows_faster_on_atom(self, ch):
        """§3.3: execution time grows more with data on the little core."""
        for wl in ("grep", "naive_bayes", "fp_growth"):
            growth = {}
            for machine in ("atom", "xeon"):
                t1 = ch.run(RunKey(machine, wl, block_size_mb=512.0,
                                   data_per_node_gb=1.0)).execution_time_s
                t20 = ch.run(RunKey(machine, wl, block_size_mb=512.0,
                                    data_per_node_gb=20.0)).execution_time_s
                growth[machine] = t20 / t1
            assert growth["atom"] > growth["xeon"], wl

    def test_edp_rises_with_data_size(self, ch):
        for machine in ("atom", "xeon"):
            small = ch.run(RunKey(machine, "wordcount", block_size_mb=512.0,
                                  data_per_node_gb=1.0))
            large = ch.run(RunKey(machine, "wordcount", block_size_mb=512.0,
                                  data_per_node_gb=10.0))
            assert _edp(large) > _edp(small)

    def test_big_core_gains_ground_with_data(self, ch):
        """EDP ratio Atom/Xeon grows with data size (except Sort)."""
        for wl in ("grep", "wordcount", "fp_growth"):
            r1 = [_edp(r) for r in _pair(ch, wl, block_size_mb=512.0,
                                         data_per_node_gb=1.0)]
            r20 = [_edp(r) for r in _pair(ch, wl, block_size_mb=512.0,
                                          data_per_node_gb=20.0)]
            assert r20[0] / r20[1] > r1[0] / r1[1], wl


class TestFig14to16AccelerationTargets:
    def test_ratio_below_one_for_map_heavy_apps(self, ch):
        from repro.core.acceleration import AccelConfig, speedup_ratio
        config = AccelConfig(accel_rate=100.0)
        for wl in ("wordcount", "sort"):
            atom, xeon = _pair(ch, wl, block_size_mb=512.0)
            assert speedup_ratio(atom, xeon, config) < 1.0, wl

    def test_ratio_monotone_in_rate_for_sort(self, ch):
        from repro.core.acceleration import sweep_acceleration
        atom, xeon = _pair(ch, "sort", block_size_mb=512.0)
        values = [v for _r, v in sweep_acceleration(atom, xeon)]
        assert values == sorted(values, reverse=True)

    def test_terasort_and_grep_barely_affected(self, ch):
        """Paper: negligible impact on TS and GP (small map share)."""
        from repro.core.acceleration import AccelConfig, speedup_ratio
        config = AccelConfig(accel_rate=100.0)
        for wl in ("terasort", "grep"):
            atom, xeon = _pair(ch, wl, block_size_mb=512.0)
            assert 0.85 <= speedup_ratio(atom, xeon, config) <= 1.05, wl


class TestTable3Fig17Targets:
    @pytest.fixture(scope="class")
    def tables(self, ch):
        from repro.core.cost import cost_table
        return {wl: cost_table(wl, characterizer=ch)
                for wl in ("wordcount", "sort", "grep", "naive_bayes")}

    def test_more_cores_lower_edp(self, tables):
        """Table 3: in most cases more cores improves EDP."""
        for wl, table in tables.items():
            for machine in ("atom", "xeon"):
                row = table.row("EDP", machine)
                assert row[-1] < row[0], (wl, machine)

    def test_max_atom_beats_min_xeon_on_edp(self, tables):
        """8 Atom cores achieve lower EDP than 2 Xeon cores (§3.5)."""
        for wl in ("wordcount", "grep", "naive_bayes"):
            table = tables[wl]
            assert (table.cell("atom", 8).metric("EDP")
                    < table.cell("xeon", 2).metric("EDP")), wl

    def test_micro_edap_rises_with_xeon_cores(self, tables):
        """Capital cost: more big cores worsens EDAP for micro-benchmarks."""
        row = tables["wordcount"].row("EDAP", "xeon")
        assert row[-1] > row[0]

    def test_real_world_edap_falls_with_cores(self, tables):
        """But for the long real-world apps, more cores lowers EDAP."""
        row = tables["naive_bayes"].row("EDAP", "atom")
        assert row[-1] < row[0]

    def test_sort_xeon_dominates_costs(self, tables):
        table = tables["sort"]
        for metric in ("EDP", "EDAP"):
            assert (table.cell("xeon", 8).metric(metric)
                    < table.cell("atom", 8).metric(metric)), metric

    def test_spider_8a_beats_8x_for_compute(self, ch, tables):
        from repro.core.cost import spider_series
        spider = spider_series(tables["wordcount"])
        assert spider["8A"]["EDP"] < 1.0
        assert spider["8A"]["EDAP"] < 1.0
