"""Cross-workload invariants of the performance simulator.

Parametrized over every registered application (including extensions):
the structural truths that must hold regardless of calibration.
"""

from __future__ import annotations

import pytest

from repro.core.characterization import RunKey
from repro.mapreduce.driver import simulate_job
from repro.workloads.base import (EXTENSIONS, MICRO_BENCHMARKS, REAL_WORLD,
                                  workload)

ALL_APPS = MICRO_BENCHMARKS + REAL_WORLD + EXTENSIONS


def _gb(wl: str) -> float:
    return 10.0 if wl in REAL_WORLD else 1.0


@pytest.mark.parametrize("wl", ALL_APPS)
class TestPerWorkloadInvariants:
    def test_big_core_faster(self, characterizer, wl):
        atom = characterizer.run(RunKey("atom", wl,
                                        data_per_node_gb=_gb(wl)))
        xeon = characterizer.run(RunKey("xeon", wl,
                                        data_per_node_gb=_gb(wl)))
        assert xeon.execution_time_s < atom.execution_time_s

    def test_little_core_lower_power(self, characterizer, wl):
        atom = characterizer.run(RunKey("atom", wl,
                                        data_per_node_gb=_gb(wl)))
        xeon = characterizer.run(RunKey("xeon", wl,
                                        data_per_node_gb=_gb(wl)))
        assert atom.dynamic_power_w < xeon.dynamic_power_w

    def test_phase_times_non_negative_and_complete(self, characterizer, wl):
        for machine in ("atom", "xeon"):
            r = characterizer.run(RunKey(machine, wl,
                                         data_per_node_gb=_gb(wl)))
            assert all(v >= 0 for v in r.phase_seconds.values())
            assert sum(r.phase_seconds.values()) == pytest.approx(
                r.execution_time_s, rel=1e-6)

    def test_stage_count_matches_spec(self, characterizer, wl):
        r = characterizer.run(RunKey("xeon", wl, data_per_node_gb=_gb(wl)))
        assert len(r.stages) == len(workload(wl).stages)

    def test_reduce_presence_matches_spec(self, characterizer, wl):
        r = characterizer.run(RunKey("xeon", wl, data_per_node_gb=_gb(wl)))
        if workload(wl).has_reduce:
            assert r.phase_time("reduce") > 0
            assert r.counters.reduce_tasks > 0
        else:
            assert r.phase_time("reduce") == 0
            assert r.counters.reduce_tasks == 0

    def test_ipc_physical(self, characterizer, wl):
        atom = characterizer.run(RunKey("atom", wl,
                                        data_per_node_gb=_gb(wl)))
        xeon = characterizer.run(RunKey("xeon", wl,
                                        data_per_node_gb=_gb(wl)))
        assert 0 < atom.ipc <= 2.0   # issue width of the little core
        assert 0 < xeon.ipc <= 4.0   # issue width of the big core
        assert xeon.ipc > atom.ipc

    def test_energy_consistent_with_power(self, characterizer, wl):
        r = characterizer.run(RunKey("atom", wl, data_per_node_gb=_gb(wl)))
        assert r.dynamic_energy_j == pytest.approx(
            r.dynamic_power_w * r.execution_time_s, rel=1e-9)


class TestClusterScaling:
    def test_weak_scaling_roughly_flat(self):
        """Same data per node, more nodes: time stays in the same
        ballpark (shuffle grows, map work per node constant)."""
        three = simulate_job("xeon", "wordcount", n_nodes=3,
                             data_per_node_gb=1.0)
        six = simulate_job("xeon", "wordcount", n_nodes=6,
                           data_per_node_gb=1.0)
        assert 0.6 < six.execution_time_s / three.execution_time_s < 1.6

    def test_strong_scaling_helps(self):
        """Same total data, more nodes: the job finishes sooner."""
        three = simulate_job("xeon", "wordcount", n_nodes=3,
                             data_per_node_gb=2.0)
        six = simulate_job("xeon", "wordcount", n_nodes=6,
                           data_per_node_gb=1.0)
        assert six.execution_time_s < three.execution_time_s

    def test_more_nodes_more_energy_per_second(self):
        three = simulate_job("atom", "grep", n_nodes=3,
                             data_per_node_gb=1.0)
        six = simulate_job("atom", "grep", n_nodes=6,
                           data_per_node_gb=1.0)
        assert six.dynamic_power_w > three.dynamic_power_w
