"""Tests for the seed-deterministic job-arrival streams."""

from __future__ import annotations

import pytest

from repro.cluster.arrivals import (DEFAULT_MIX, ArrivalConfig, JobRequest,
                                    parse_trace, poisson_stream, trace_csv)


class TestJobRequest:
    def test_queue_is_user_prefix(self):
        req = JobRequest(0, 1.0, "wordcount", 2, 0.25, "prod-ana")
        assert req.queue == "prod"

    def test_queue_without_dash_is_whole_user(self):
        req = JobRequest(0, 1.0, "wordcount", 2, 0.25, "alice")
        assert req.queue == "alice"

    @pytest.mark.parametrize("kwargs", [
        dict(job_id=-1), dict(submit_s=-0.1), dict(nodes=0),
        dict(data_per_node_gb=0.0), dict(workload=""), dict(user=""),
    ])
    def test_validation(self, kwargs):
        base = dict(job_id=0, submit_s=0.0, workload="wordcount",
                    nodes=2, data_per_node_gb=0.25, user="prod-ana")
        base.update(kwargs)
        with pytest.raises(ValueError):
            JobRequest(**base)


class TestArrivalConfig:
    @pytest.mark.parametrize("kwargs", [
        dict(n_jobs=0), dict(jobs_per_1000s=0.0),
        dict(workload_mix=()), dict(workload_mix=(("wordcount", 0.0),)),
        dict(node_choices=()), dict(node_choices=(0,)),
        dict(size_choices_gb=(0.0,)), dict(users=()),
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ArrivalConfig(**kwargs)


class TestPoissonStream:
    def test_same_config_same_stream(self):
        config = ArrivalConfig(seed=7, n_jobs=20)
        assert poisson_stream(config) == poisson_stream(config)

    def test_seed_changes_stream(self):
        a = poisson_stream(ArrivalConfig(seed=1, n_jobs=20))
        b = poisson_stream(ArrivalConfig(seed=2, n_jobs=20))
        assert a != b

    def test_sorted_with_sequential_ids(self):
        stream = poisson_stream(ArrivalConfig(seed=3, n_jobs=30))
        assert [r.job_id for r in stream] == list(range(30))
        assert all(b.submit_s >= a.submit_s
                   for a, b in zip(stream, stream[1:]))

    def test_draws_stay_in_their_domains(self):
        config = ArrivalConfig(seed=5, n_jobs=40)
        names = {name for name, _ in DEFAULT_MIX}
        for req in poisson_stream(config):
            assert req.workload in names
            assert req.nodes in config.node_choices
            assert req.data_per_node_gb in config.size_choices_gb
            assert req.user in config.users

    def test_rate_compresses_the_schedule(self):
        slow = poisson_stream(ArrivalConfig(seed=9, n_jobs=25,
                                            jobs_per_1000s=50.0))
        fast = poisson_stream(ArrivalConfig(seed=9, n_jobs=25,
                                            jobs_per_1000s=500.0))
        assert fast[-1].submit_s < slow[-1].submit_s

    def test_every_workload_eventually_drawn(self):
        stream = poisson_stream(ArrivalConfig(seed=0, n_jobs=200))
        assert {r.workload for r in stream} == {n for n, _ in DEFAULT_MIX}


class TestTraceRoundTrip:
    def test_round_trip_is_exact(self):
        stream = poisson_stream(ArrivalConfig(seed=11, n_jobs=25))
        assert parse_trace(trace_csv(stream)) == stream

    def test_round_trip_past_1000_seconds(self):
        # repr() formatting keeps long schedules exact; %g would have
        # truncated 1234.567 to 6 significant digits.
        stream = (JobRequest(0, 1234.567, "wordcount", 2, 0.25, "u-a"),)
        assert parse_trace(trace_csv(stream)) == stream

    def test_comments_and_blank_lines_skipped(self):
        stream = poisson_stream(ArrivalConfig(seed=1, n_jobs=3))
        text = trace_csv(stream)
        lines = text.splitlines()
        lines.insert(1, "# a comment")
        lines.insert(3, "")
        assert parse_trace("\n".join(lines)) == stream

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            parse_trace("  \n# only comments\n")

    def test_bad_header_rejected(self):
        with pytest.raises(ValueError, match="header"):
            parse_trace("id,when\n0,1.0\n")

    def test_wrong_column_count_names_the_line(self):
        text = trace_csv(poisson_stream(ArrivalConfig(seed=1, n_jobs=2)))
        with pytest.raises(ValueError, match="line 4"):
            parse_trace(text + "9,1.0,wordcount\n")

    def test_bad_field_value_names_the_line(self):
        header = trace_csv(()).strip()
        with pytest.raises(ValueError, match="line 2"):
            parse_trace(header + "\nx,1.0,wordcount,2,0.25,u-a\n")

    def test_duplicate_ids_rejected(self):
        header = trace_csv(()).strip()
        body = "\n0,1.0,wordcount,2,0.25,u-a\n0,2.0,sort,2,0.25,u-a\n"
        with pytest.raises(ValueError, match="duplicate"):
            parse_trace(header + body)

    def test_unsorted_trace_rejected(self):
        header = trace_csv(()).strip()
        body = "\n0,5.0,wordcount,2,0.25,u-a\n1,2.0,sort,2,0.25,u-a\n"
        with pytest.raises(ValueError, match="sorted"):
            parse_trace(header + body)
