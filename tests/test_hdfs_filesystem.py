"""Integration tests for the simulated HDFS data path."""

from __future__ import annotations

import pytest

from repro.arch.presets import ATOM_C2758, XEON_E5_2420
from repro.cluster.server import Cluster
from repro.hdfs.filesystem import HDFS
from repro.sim.engine import Simulator

MB = 1024 * 1024


def _cluster(spec=XEON_E5_2420, n=3, freq=1.8):
    sim = Simulator()
    return sim, Cluster.homogeneous(sim, spec, n, freq)


def _drive(sim, gen):
    proc = sim.process(gen)
    sim.run()
    assert proc.ok
    return proc.value


class TestSetup:
    def test_load_input_registers_blocks(self):
        sim, cluster = _cluster()
        hdfs = HDFS(cluster, 64 * MB)
        blocks = hdfs.load_input("data", 256 * MB)
        assert len(blocks) == 4
        assert hdfs.num_map_tasks("data") == 4

    def test_invalid_block_size(self):
        sim, cluster = _cluster()
        with pytest.raises(ValueError):
            HDFS(cluster, 0)

    def test_invalid_cache_fraction(self):
        sim, cluster = _cluster()
        with pytest.raises(ValueError):
            HDFS(cluster, 64 * MB, page_cache_hit=1.0)


class TestReads:
    def test_local_read_time_bounded_by_disk_and_iopath(self):
        sim, cluster = _cluster()
        hdfs = HDFS(cluster, 64 * MB)
        node = cluster.nodes[0]
        nbytes = 64 * MB
        elapsed = _drive(sim, hdfs.read_span(node.name, node, nbytes))
        floor = max(node.disk.service_time(nbytes),
                    node.iopath.service_time(nbytes))
        assert elapsed == pytest.approx(floor, rel=0.01)

    def test_remote_read_slower_than_local(self):
        sim, cluster = _cluster()
        hdfs = HDFS(cluster, 64 * MB)
        reader = cluster.nodes[0]
        local = _drive(sim, hdfs.read_span(reader.name, reader, 64 * MB))
        sim2, cluster2 = _cluster()
        hdfs2 = HDFS(cluster2, 64 * MB)
        reader2 = cluster2.nodes[0]
        remote = _drive(sim2, hdfs2.read_span("xeon1", reader2, 64 * MB))
        assert remote > local

    def test_page_cache_accelerates_reads(self):
        def read_time(hit):
            sim, cluster = _cluster()
            hdfs = HDFS(cluster, 64 * MB, page_cache_hit=hit)
            node = cluster.nodes[0]
            return _drive(sim, hdfs.read_span(node.name, node, 64 * MB))
        assert read_time(0.75) < read_time(0.0)

    def test_read_block_uses_replica(self):
        sim, cluster = _cluster()
        hdfs = HDFS(cluster, 64 * MB)
        block = hdfs.load_input("data", 64 * MB)[0]
        elapsed = _drive(sim, hdfs.read_block(block, cluster.nodes[0]))
        assert elapsed > 0

    def test_atom_iopath_binds(self):
        """On the little core the CPU-coupled I/O path, not the disk,
        limits local reads — the paper's Sort mechanism."""
        sim, cluster = _cluster(spec=ATOM_C2758)
        hdfs = HDFS(cluster, 64 * MB)
        node = cluster.nodes[0]
        nbytes = 256 * MB
        elapsed = _drive(sim, hdfs.read_span(node.name, node, nbytes,
                                             io_factor=2.0))
        disk_only = node.disk.service_time(nbytes)
        assert elapsed > 2 * disk_only


class TestWrites:
    def test_replicated_write_touches_other_nodes(self):
        sim, cluster = _cluster()
        hdfs = HDFS(cluster, 64 * MB, replication=3)
        writer = cluster.nodes[0]
        _drive(sim, hdfs.write("out", 64 * MB, writer))
        touched = {iv.node for iv in cluster.trace.filter(device="disk")}
        assert len(touched) == 3

    def test_replication_override(self):
        sim, cluster = _cluster()
        hdfs = HDFS(cluster, 64 * MB, replication=3)
        writer = cluster.nodes[0]
        _drive(sim, hdfs.write("out", 64 * MB, writer, replication=1))
        touched = {iv.node for iv in cluster.trace.filter(device="disk")}
        assert touched == {writer.name}

    def test_write_local_records_trace(self):
        sim, cluster = _cluster()
        hdfs = HDFS(cluster, 64 * MB)
        node = cluster.nodes[0]
        _drive(sim, hdfs.write_local(node, 32 * MB, kind="map.spill"))
        spills = cluster.trace.filter(device="disk", kind="map.spill")
        assert len(spills) == 1
        assert spills[0].duration == pytest.approx(
            node.disk.service_time(32 * MB))

    def test_trace_phases_tagged(self):
        sim, cluster = _cluster()
        hdfs = HDFS(cluster, 64 * MB)
        node = cluster.nodes[0]
        _drive(sim, hdfs.read_span(node.name, node, 8 * MB, phase="reduce"))
        assert all(iv.phase == "reduce" for iv in cluster.trace)
