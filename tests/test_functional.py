"""Unit and property tests for the functional MapReduce runtime."""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given, strategies as st

from repro.mapreduce.functional import (FunctionalJob, LocalRuntime,
                                        hash_partitioner, identity_mapper,
                                        identity_reducer, run_pipeline)

words = st.text(alphabet="abcde", min_size=1, max_size=4)


def _wc_job(num_reducers=2, combiner=True):
    def mapper(_k, line):
        for w in line.split():
            yield (w, 1)

    def reducer(word, counts):
        yield (word, sum(counts))

    return FunctionalJob("wc", mapper, reducer,
                         combiner=reducer if combiner else None,
                         num_reducers=num_reducers)


class TestSemantics:
    def test_wordcount_matches_counter(self):
        lines = ["a b a", "c b a", "c c c"]
        runtime = LocalRuntime(num_mappers=2)
        output, stats = runtime.run(_wc_job(), [(i, l) for i, l in
                                                enumerate(lines)])
        expected = Counter(" ".join(lines).split())
        assert dict(output) == dict(expected)
        assert stats.input_records == 3
        assert stats.map_output_records == 9

    def test_identity_job_preserves_records(self):
        records = [(i, f"v{i}") for i in range(20)]
        job = FunctionalJob("id", identity_mapper, identity_reducer,
                            num_reducers=3)
        output, stats = LocalRuntime().run(job, records)
        assert sorted(output) == sorted(records)
        assert stats.output_records == 20

    def test_no_reducer_passes_pairs_through(self):
        records = [(1, "a"), (2, "b")]
        job = FunctionalJob("map-only", identity_mapper, reducer=None)
        output, _ = LocalRuntime().run(job, records)
        assert sorted(output) == records

    def test_reducer_sees_grouped_values(self):
        seen = {}

        def mapper(_k, v):
            yield (v % 2, v)

        def reducer(key, values):
            seen[key] = sorted(values)
            yield (key, len(values))

        job = FunctionalJob("group", mapper, reducer, num_reducers=2)
        LocalRuntime().run(job, [(i, i) for i in range(6)])
        assert seen[0] == [0, 2, 4]
        assert seen[1] == [1, 3, 5]

    def test_output_sorted_within_reducer(self):
        job = FunctionalJob("sorted", identity_mapper, identity_reducer,
                            num_reducers=1)
        records = [(k, None) for k in (5, 3, 9, 1)]
        output, _ = LocalRuntime().run(job, records)
        assert [k for k, _ in output] == [1, 3, 5, 9]

    def test_custom_partitioner_routes_keys(self):
        routed = []

        def reducer(key, values):
            routed.append(key)
            yield (key, len(values))

        job = FunctionalJob("routed", identity_mapper, reducer,
                            partitioner=lambda k, n: 0, num_reducers=4)
        LocalRuntime().run(job, [(i, i) for i in range(5)])
        assert sorted(routed) == list(range(5))

    def test_bad_mapper_output_rejected(self):
        def mapper(_k, v):
            yield v  # not a pair

        job = FunctionalJob("bad", mapper, identity_reducer)
        with pytest.raises(TypeError):
            LocalRuntime().run(job, [(0, "x")])


class TestSpills:
    def test_small_buffer_spills_more(self):
        records = [(i, "w " * 10) for i in range(50)]
        big = LocalRuntime(num_mappers=1, sort_buffer_records=10 ** 6)
        small = LocalRuntime(num_mappers=1, sort_buffer_records=16)
        _, stats_big = big.run(_wc_job(), records)
        _, stats_small = small.run(_wc_job(), records)
        assert stats_small.spills > stats_big.spills

    def test_combiner_shrinks_shuffle(self):
        records = [(i, "a a a a b") for i in range(30)]
        _, with_c = LocalRuntime(num_mappers=2).run(_wc_job(combiner=True),
                                                    records)
        _, without = LocalRuntime(num_mappers=2).run(_wc_job(combiner=False),
                                                     records)
        assert with_c.shuffle_records < without.shuffle_records

    @given(st.lists(st.lists(words, max_size=6).map(" ".join), max_size=15),
           st.integers(min_value=1, max_value=4),
           st.integers(min_value=1, max_value=4))
    def test_result_invariant_to_parallelism(self, lines, mappers, reducers):
        """Output must not depend on split/reducer counts."""
        records = [(i, l) for i, l in enumerate(lines)]
        base, _ = LocalRuntime(num_mappers=1).run(_wc_job(1), records)
        out, _ = LocalRuntime(num_mappers=mappers).run(_wc_job(reducers),
                                                       records)
        assert sorted(base) == sorted(out)

    @given(st.lists(st.lists(words, max_size=6).map(" ".join), max_size=15),
           st.integers(min_value=4, max_value=64))
    def test_combiner_and_spills_preserve_totals(self, lines, buffer_size):
        records = [(i, l) for i, l in enumerate(lines)]
        runtime = LocalRuntime(num_mappers=2, sort_buffer_records=buffer_size)
        output, _ = runtime.run(_wc_job(), records)
        assert dict(output) == dict(Counter(" ".join(lines).split()))


class TestPipeline:
    def test_chained_jobs(self):
        def invert(word, count):
            yield (-count, word)

        job1 = _wc_job(num_reducers=2)
        job2 = FunctionalJob("invert", invert, identity_reducer,
                             num_reducers=1)
        records = [(0, "a a a b b c")]
        output, stats = run_pipeline(LocalRuntime(), [job1, job2], records)
        assert output[0] == (-3, "a")  # most frequent first
        assert len(stats) == 2


class TestValidation:
    def test_runtime_validation(self):
        with pytest.raises(ValueError):
            LocalRuntime(num_mappers=0)
        with pytest.raises(ValueError):
            LocalRuntime(sort_buffer_records=0)

    def test_job_validation(self):
        with pytest.raises(ValueError):
            FunctionalJob("bad", identity_mapper, num_reducers=0)

    def test_hash_partitioner_range(self):
        for key in ("a", 1, (2, "b")):
            assert 0 <= hash_partitioner(key, 7) < 7
