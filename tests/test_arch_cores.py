"""Unit and property tests for the analytical core model."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.arch.caches import KIB, MIB, CacheHierarchy, CacheLevel
from repro.arch.cores import CoreSpec, CpuProfile, scale_profile
from repro.arch.presets import ATOM_C2758, XEON_E5_2420

GHZ = 1e9


def _profile(**overrides):
    params = dict(ilp=2.0, apki=400.0, l1_miss_ratio=0.08,
                  locality_alpha=0.6, branch_mpki=4.0, frontend_mpki=2.0)
    params.update(overrides)
    return CpuProfile.characterized("test", **params)


def _core(issue=4, hide=0.6, mlp=4.0, **overrides):
    hierarchy = CacheHierarchy(
        [CacheLevel("L1", 32 * KIB, latency_cycles=4),
         CacheLevel("L2", 256 * KIB, latency_cycles=12)],
        dram_latency_ns=80.0)
    params = dict(name="test-core", microarch="test", issue_width=issue,
                  pipeline_depth=14, out_of_order=True, stall_hide=hide,
                  mlp=mlp, hierarchy=hierarchy)
    params.update(overrides)
    return CoreSpec(**params)


class TestCpuProfile:
    def test_validation(self):
        with pytest.raises(ValueError):
            CpuProfile("bad", ilp=0, apki=100, working_set_bytes=1024,
                       locality_alpha=0.5)
        with pytest.raises(ValueError):
            CpuProfile("bad", ilp=1, apki=-1, working_set_bytes=1024,
                       locality_alpha=0.5)

    def test_characterized_anchors_l1(self):
        profile = _profile(l1_miss_ratio=0.12)
        assert profile.miss_curve.miss_ratio_beyond(
            32 * KIB) == pytest.approx(0.12)

    def test_scale_profile_grows_working_set(self):
        base = _profile()
        scaled = scale_profile(base, working_set_factor=4.0)
        assert scaled.working_set_bytes == pytest.approx(
            4.0 * base.working_set_bytes)
        assert scaled.locality_alpha == base.locality_alpha

    def test_scale_profile_validation(self):
        with pytest.raises(ValueError):
            scale_profile(_profile(), working_set_factor=0.0)


class TestCoreSpecValidation:
    def test_bad_issue_width(self):
        with pytest.raises(ValueError):
            _core(issue=0)

    def test_bad_stall_hide(self):
        with pytest.raises(ValueError):
            _core(hide=1.0)

    def test_bad_mlp(self):
        with pytest.raises(ValueError):
            _core(mlp=0.5)


class TestCpiModel:
    def test_cpi_base_limited_by_issue_width(self):
        core = _core(issue=4)
        wide = _profile(ilp=8.0)
        assert core.cpi_base(wide) == pytest.approx(0.25)

    def test_cpi_base_limited_by_ilp(self):
        core = _core(issue=4)
        narrow = _profile(ilp=1.25)
        assert core.cpi_base(narrow) == pytest.approx(0.8)

    def test_branch_cpi(self):
        core = _core()
        assert core.cpi_branch(_profile(branch_mpki=5.0)) == pytest.approx(
            5.0 / 1000.0 * 14)

    def test_frontend_cpi_uses_l2_latency_by_default(self):
        core = _core()
        assert core.cpi_frontend(_profile(frontend_mpki=10.0)) == (
            pytest.approx(10.0 / 1000.0 * 12))

    def test_frontend_penalty_override(self):
        core = _core(frontend_penalty_cycles=30.0)
        assert core.cpi_frontend(_profile(frontend_mpki=10.0)) == (
            pytest.approx(0.3))

    def test_stall_hiding_reduces_memory_cpi(self):
        profile = _profile(l1_miss_ratio=0.3, locality_alpha=0.4)
        exposed = _core(hide=0.0).cpi_memory(profile, 1.8 * GHZ)
        hidden = _core(hide=0.8).cpi_memory(profile, 1.8 * GHZ)
        assert hidden == pytest.approx(exposed * 0.2)

    def test_mlp_divides_memory_cpi(self):
        profile = _profile(l1_miss_ratio=0.3, locality_alpha=0.4)
        one = _core(mlp=1.0).cpi_memory(profile, 1.8 * GHZ)
        four = _core(mlp=4.0).cpi_memory(profile, 1.8 * GHZ)
        assert four == pytest.approx(one / 4.0)

    def test_evaluate_composes_terms(self):
        core = _core()
        profile = _profile()
        perf = core.evaluate(profile, 1.8 * GHZ)
        expected = (core.cpi_base(profile) + core.cpi_branch(profile)
                    + core.cpi_frontend(profile)
                    + core.cpi_memory(profile, 1.8 * GHZ))
        assert perf.cpi == pytest.approx(expected)
        assert perf.ipc == pytest.approx(1.0 / expected)

    def test_invalid_frequency(self):
        with pytest.raises(ValueError):
            _core().evaluate(_profile(), 0.0)

    def test_seconds_for(self):
        perf = _core().evaluate(_profile(), 2 * GHZ)
        assert perf.seconds_for(2e9) == pytest.approx(perf.cpi)
        with pytest.raises(ValueError):
            perf.seconds_for(-1)

    def test_activity_in_unit_interval(self):
        perf = _core().evaluate(_profile(l1_miss_ratio=0.4,
                                         locality_alpha=0.3), 1.8 * GHZ)
        assert 0.0 < perf.activity <= 1.0

    @given(st.floats(min_value=1.0, max_value=3.0),
           st.floats(min_value=1.0, max_value=3.0))
    def test_ipc_never_exceeds_issue_width(self, f_a, ilp):
        core = _core(issue=4)
        perf = core.evaluate(_profile(ilp=ilp), f_a * GHZ)
        assert perf.ipc <= 4.0 + 1e-9

    @given(st.floats(min_value=1.2, max_value=1.8),
           st.floats(min_value=1.2, max_value=1.8))
    def test_wall_dram_makes_cpi_rise_with_frequency(self, f_lo, f_hi):
        """With fixed-ns DRAM, higher frequency means more stall cycles."""
        f_lo, f_hi = min(f_lo, f_hi), max(f_lo, f_hi)
        core = _core(hide=0.0)
        profile = _profile(l1_miss_ratio=0.3, locality_alpha=0.3)
        assert (core.cpi_memory(profile, f_hi * GHZ)
                >= core.cpi_memory(profile, f_lo * GHZ) - 1e-12)

    @given(st.floats(min_value=1.2, max_value=1.8))
    def test_time_still_improves_with_frequency(self, freq):
        """Seconds per instruction must not increase when f rises."""
        core = _core()
        profile = _profile(l1_miss_ratio=0.3, locality_alpha=0.3)
        t_ref = core.evaluate(profile, 1.2 * GHZ).seconds_for(1e9)
        t = core.evaluate(profile, freq * GHZ).seconds_for(1e9)
        assert t <= t_ref + 1e-12


class TestPresetCores:
    def test_xeon_beats_atom_on_every_profile(self):
        for profile in (_profile(), _profile(ilp=1.2),
                        _profile(l1_miss_ratio=0.3, locality_alpha=0.35)):
            xeon = XEON_E5_2420.core.evaluate(profile, 1.8 * GHZ)
            atom = ATOM_C2758.core.evaluate(profile, 1.8 * GHZ)
            assert xeon.ipc > atom.ipc

    def test_low_ilp_narrows_the_gap(self):
        """Fig. 1's mechanism: the 4-wide core can't use width on
        low-ILP Hadoop-like code."""
        high = _profile(ilp=3.5)
        low = _profile(ilp=1.2)
        def ratio(p):
            return (XEON_E5_2420.core.evaluate(p, 1.8 * GHZ).ipc
                    / ATOM_C2758.core.evaluate(p, 1.8 * GHZ).ipc)
        assert ratio(low) < ratio(high)

    def test_memory_heavy_code_widens_the_gap(self):
        """The L3 + OoO window help most when misses dominate (Sort)."""
        friendly = _profile(l1_miss_ratio=0.03, locality_alpha=0.7)
        hostile = _profile(l1_miss_ratio=0.30, locality_alpha=0.40)
        def ratio(p):
            return (XEON_E5_2420.core.evaluate(p, 1.8 * GHZ).ipc
                    / ATOM_C2758.core.evaluate(p, 1.8 * GHZ).ipc)
        assert ratio(hostile) > ratio(friendly)
