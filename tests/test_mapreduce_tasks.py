"""Unit tests for the map/reduce task models (driven standalone)."""

from __future__ import annotations

import pytest

from repro.arch.presets import ATOM_C2758, XEON_E5_2420
from repro.cluster.server import Cluster
from repro.hdfs.blocks import Block
from repro.hdfs.filesystem import HDFS
from repro.mapreduce.config import DEFAULT_CONF
from repro.mapreduce.tasks import MapTask, ReduceTask, RunCounters
from repro.sim.engine import Simulator
from repro.workloads.base import workload

MB = 1024 * 1024


def _setup(spec=XEON_E5_2420, freq=1.8, block_mb=64):
    sim = Simulator()
    cluster = Cluster.homogeneous(sim, spec, 3, freq)
    hdfs = HDFS(cluster, block_mb * MB)
    return sim, cluster, hdfs


def _run_map(spec=XEON_E5_2420, wl="wordcount", block_mb=64, freq=1.8):
    sim, cluster, hdfs = _setup(spec, freq, block_mb)
    blocks = hdfs.load_input("in", block_mb * MB)
    counters = RunCounters()
    task = MapTask("m0", cluster.nodes[0], hdfs,
                   workload(wl).stages[0], DEFAULT_CONF, counters,
                   blocks[0])
    proc = sim.process(task.run())
    sim.run()
    assert proc.ok
    return sim, task, counters


class TestRunCounters:
    def test_ipc(self):
        c = RunCounters()
        c.charge(2e9, 4e9)
        assert c.ipc == pytest.approx(0.5)

    def test_empty_ipc(self):
        assert RunCounters().ipc == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            RunCounters().charge(-1, 0)


class TestMapTask:
    def test_produces_output(self):
        _sim, task, counters = _run_map()
        stage = workload("wordcount").stages[0]
        assert task.output_bytes == pytest.approx(
            64 * MB * stage.map_output_ratio)
        assert counters.map_tasks == 1
        assert counters.input_bytes == pytest.approx(64 * MB)

    def test_duration_scales_with_block(self):
        sim_small, _t, _c = _run_map(block_mb=64)
        sim_big, _t, _c = _run_map(block_mb=256)
        # Startup is fixed, compute scales ~4x: total should be 2.5-4x.
        assert 2.2 < sim_big.now / sim_small.now < 4.5

    def test_atom_slower_than_xeon(self):
        sim_x, _t, _c = _run_map(spec=XEON_E5_2420)
        sim_a, _t, _c = _run_map(spec=ATOM_C2758)
        assert sim_a.now > sim_x.now

    def test_higher_frequency_faster(self):
        slow, _t, _c = _run_map(freq=1.2)
        fast, _t, _c = _run_map(freq=1.8)
        assert fast.now < slow.now

    def test_charges_instructions(self):
        _sim, _task, counters = _run_map()
        assert counters.instructions > 64 * MB  # > 1 instruction per byte
        assert counters.cycles > counters.instructions / 4  # IPC <= 4

    def test_sort_spills_more_than_wordcount(self):
        _s, _t, wc = _run_map(wl="wordcount", block_mb=512)
        _s, _t, st = _run_map(wl="sort", block_mb=512)
        assert st.spill_bytes > wc.spill_bytes


class TestReduceTask:
    def _run_reduce(self, partition_mb=64, wl="wordcount"):
        sim, cluster, hdfs = _setup()
        counters = RunCounters()
        sources = {n.name: partition_mb * MB / 3 for n in cluster.nodes}
        task = ReduceTask("r0", cluster.nodes[0], hdfs,
                          workload(wl).stages[0], DEFAULT_CONF, counters,
                          sources)
        proc = sim.process(task.run())
        sim.run()
        assert proc.ok
        return sim, task, counters

    def test_shuffles_and_writes(self):
        _sim, task, counters = self._run_reduce()
        stage = workload("wordcount").stages[0]
        assert counters.shuffle_bytes == pytest.approx(64 * MB)
        assert task.output_bytes == pytest.approx(
            64 * MB * stage.reduce_output_ratio)
        assert counters.reduce_tasks == 1

    def test_remote_sources_cost_network(self):
        sim, cluster, hdfs = _setup()
        counters = RunCounters()
        remote_only = {"xeon1": 32 * MB, "xeon2": 32 * MB}
        task = ReduceTask("r0", cluster.nodes[0], hdfs,
                          workload("wordcount").stages[0], DEFAULT_CONF,
                          counters, remote_only)
        sim.process(task.run())
        sim.run()
        nic_traffic = sum(iv.duration for iv in cluster.trace.filter(
            device="nic"))
        assert nic_traffic > 0

    def test_bigger_partition_takes_longer(self):
        small, _t, _c = self._run_reduce(partition_mb=32)
        big, _t, _c = self._run_reduce(partition_mb=256)
        assert big.now > small.now

    def test_oversized_partition_spills(self):
        sim, cluster, hdfs = _setup()
        counters = RunCounters()
        sources = {"xeon0": 400 * MB}  # above merge_memory (140 MB)
        task = ReduceTask("r0", cluster.nodes[0], hdfs,
                          workload("wordcount").stages[0], DEFAULT_CONF,
                          counters, sources)
        sim.process(task.run())
        sim.run()
        spill_intervals = cluster.trace.filter(device="disk",
                                               kind="reduce.spill")
        assert spill_intervals
