"""Unit tests for counted resources and bandwidth devices."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.sim.engine import SimulationError, Simulator
from repro.sim.resources import BandwidthDevice, Resource


def _use(sim, resource, hold, log, tag):
    req = resource.request()
    yield req
    log.append(("acquire", tag, sim.now))
    yield sim.timeout(hold)
    resource.release(req)
    log.append(("release", tag, sim.now))


class TestResource:
    def test_capacity_enforced(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        log = []
        sim.process(_use(sim, res, 5, log, "a"))
        sim.process(_use(sim, res, 5, log, "b"))
        sim.run()
        acquires = [(t, n) for kind, t, n in log if kind == "acquire"]
        assert acquires == [("a", 0.0), ("b", 5.0)]

    def test_parallel_up_to_capacity(self):
        sim = Simulator()
        res = Resource(sim, capacity=3)
        log = []
        for tag in "abc":
            sim.process(_use(sim, res, 2, log, tag))
        sim.run()
        assert all(now == 0.0 for kind, _t, now in log if kind == "acquire")
        assert sim.now == 2.0

    def test_fifo_ordering(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        log = []
        for tag in "abcd":
            sim.process(_use(sim, res, 1, log, tag))
        sim.run()
        acquired = [t for kind, t, _ in log if kind == "acquire"]
        assert acquired == ["a", "b", "c", "d"]

    def test_invalid_capacity(self):
        with pytest.raises(SimulationError):
            Resource(Simulator(), capacity=0)

    def test_release_without_acquire_rejected(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        req = res.request()
        sim.run()
        res.release(req)
        with pytest.raises(SimulationError):
            res.release(req)

    def test_queue_length_and_in_use(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        for _ in range(3):
            res.request()
        assert res.in_use == 1
        assert res.queue_length == 2

    def test_wait_statistics(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        log = []
        sim.process(_use(sim, res, 4, log, "a"))
        sim.process(_use(sim, res, 4, log, "b"))
        sim.run()
        assert res.stats.acquisitions == 2
        assert res.stats.total_wait == pytest.approx(4.0)
        assert res.stats.mean_wait() == pytest.approx(2.0)

    def test_utilization_full_serial(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        log = []
        sim.process(_use(sim, res, 3, log, "a"))
        sim.process(_use(sim, res, 3, log, "b"))
        sim.run()
        assert res.utilization(sim.now) == pytest.approx(1.0)

    @given(st.integers(min_value=1, max_value=6),
           st.integers(min_value=1, max_value=20))
    def test_makespan_matches_wave_count(self, capacity, n_tasks):
        """n identical unit tasks over c slots finish in ceil(n/c) waves."""
        sim = Simulator()
        res = Resource(sim, capacity=capacity)
        log = []
        for i in range(n_tasks):
            sim.process(_use(sim, res, 1.0, log, i))
        sim.run()
        waves = -(-n_tasks // capacity)
        assert sim.now == pytest.approx(float(waves))


class TestBandwidthDevice:
    def test_service_time(self):
        sim = Simulator()
        dev = BandwidthDevice(sim, bandwidth=100.0, latency=0.5)
        assert dev.service_time(200.0) == pytest.approx(2.5)

    def test_transfers_serialize(self):
        sim = Simulator()
        dev = BandwidthDevice(sim, bandwidth=10.0)

        def mover(sim, dev, n):
            yield from dev.transfer(n)

        sim.process(mover(sim, dev, 100.0))
        sim.process(mover(sim, dev, 100.0))
        sim.run()
        assert sim.now == pytest.approx(20.0)
        assert dev.bytes_moved == pytest.approx(200.0)

    def test_channels_allow_parallelism(self):
        sim = Simulator()
        dev = BandwidthDevice(sim, bandwidth=10.0, channels=2)

        def mover(sim, dev, n):
            yield from dev.transfer(n)

        sim.process(mover(sim, dev, 100.0))
        sim.process(mover(sim, dev, 100.0))
        sim.run()
        assert sim.now == pytest.approx(10.0)

    def test_transfer_returns_elapsed_including_queue(self):
        sim = Simulator()
        dev = BandwidthDevice(sim, bandwidth=10.0)
        elapsed = []

        def mover(sim, dev, n):
            t = yield from dev.transfer(n)
            elapsed.append(t)

        sim.process(mover(sim, dev, 100.0))
        sim.process(mover(sim, dev, 100.0))
        sim.run()
        assert elapsed[0] == pytest.approx(10.0)
        assert elapsed[1] == pytest.approx(20.0)  # waited behind the first

    def test_negative_size_rejected(self):
        sim = Simulator()
        dev = BandwidthDevice(sim, bandwidth=10.0)
        with pytest.raises(SimulationError):
            dev.service_time(-1.0)

    def test_invalid_parameters(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            BandwidthDevice(sim, bandwidth=0.0)
        with pytest.raises(SimulationError):
            BandwidthDevice(sim, bandwidth=1.0, latency=-0.1)

    def test_busy_intervals_recorded(self):
        sim = Simulator()
        dev = BandwidthDevice(sim, bandwidth=10.0)

        def mover(sim, dev):
            yield from dev.transfer(50.0)

        sim.process(mover(sim, dev))
        sim.run()
        assert dev.busy_intervals == [(0.0, 5.0)]
        assert dev.utilization(sim.now) == pytest.approx(1.0)

    @given(st.lists(st.floats(min_value=1.0, max_value=1e6),
                    min_size=1, max_size=10))
    def test_serialized_makespan_is_sum_of_service(self, sizes):
        sim = Simulator()
        dev = BandwidthDevice(sim, bandwidth=123.0, latency=0.25)

        def mover(sim, dev, n):
            yield from dev.transfer(n)

        for n in sizes:
            sim.process(mover(sim, dev, n))
        sim.run()
        expected = sum(dev.service_time(n) for n in sizes)
        assert sim.now == pytest.approx(expected)
