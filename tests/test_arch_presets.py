"""The machine presets must encode the paper's Table 1 and §1.2 facts."""

from __future__ import annotations

import pytest

from repro.arch.caches import KIB, MIB
from repro.arch.dvfs import GHZ
from repro.arch.presets import (ATOM_C2758, FRAMEWORK_PROFILE, MACHINES,
                                XEON_E5_2420, machine)


class TestTable1Parameters:
    def test_atom_identity(self):
        assert ATOM_C2758.core.name == "Atom C2758"
        assert ATOM_C2758.core.microarch == "Silvermont"

    def test_xeon_identity(self):
        assert XEON_E5_2420.core.name == "Xeon E5-2420"
        assert XEON_E5_2420.core.microarch == "Sandy Bridge"

    def test_atom_cache_hierarchy(self):
        levels = ATOM_C2758.core.hierarchy.levels
        assert [lv.name for lv in levels] == ["L1d", "L2"]  # two-level
        assert levels[0].size_bytes == 24 * KIB
        assert levels[1].size_bytes == 1 * MIB

    def test_xeon_cache_hierarchy(self):
        levels = XEON_E5_2420.core.hierarchy.levels
        assert [lv.name for lv in levels] == ["L1d", "L2", "L3"]
        assert levels[0].size_bytes == 32 * KIB
        assert levels[1].size_bytes == 256 * KIB
        assert levels[2].size_bytes == 15 * MIB

    def test_core_counts(self):
        assert ATOM_C2758.cores_per_node == 8
        assert XEON_E5_2420.cores_per_chip == 6
        assert XEON_E5_2420.cores_per_node == 12  # two sockets

    def test_issue_widths(self):
        assert XEON_E5_2420.core.issue_width == 4  # "up to 4 per cycle"
        assert ATOM_C2758.core.issue_width == 2    # "limited to 2"

    def test_same_dram_size(self):
        assert ATOM_C2758.dram_bytes == XEON_E5_2420.dram_bytes == 8 * 1024 ** 3

    def test_frequency_range_covers_paper_sweep(self):
        for spec in (ATOM_C2758, XEON_E5_2420):
            for f in (1.2, 1.4, 1.6, 1.8):
                assert spec.dvfs.supports(f * GHZ)


class TestDieAreas:
    def test_paper_areas(self):
        assert ATOM_C2758.chip_area_mm2 == 160.0
        assert XEON_E5_2420.chip_area_mm2 == 216.0

    def test_area_per_core(self):
        assert ATOM_C2758.area_per_core_mm2 == pytest.approx(20.0)
        assert XEON_E5_2420.area_per_core_mm2 == pytest.approx(36.0)

    def test_eight_xeon_cores_span_both_sockets(self):
        assert XEON_E5_2420.area_for_cores(8) == pytest.approx(288.0)

    def test_invalid_core_count(self):
        with pytest.raises(ValueError):
            ATOM_C2758.area_for_cores(0)


class TestRelativeCharacter:
    def test_big_core_hides_more_stalls(self):
        assert XEON_E5_2420.core.stall_hide > ATOM_C2758.core.stall_hide
        assert XEON_E5_2420.core.mlp > ATOM_C2758.core.mlp

    def test_big_core_overlaps_more_io(self):
        assert XEON_E5_2420.core.io_overlap > ATOM_C2758.core.io_overlap

    def test_little_core_io_path_slower(self):
        assert (ATOM_C2758.io_path_bw_per_ghz
                < XEON_E5_2420.io_path_bw_per_ghz)
        assert ATOM_C2758.core.io_path_overhead > 1.0

    def test_big_core_burns_more_power(self):
        assert (XEON_E5_2420.power.core_dynamic_coeff
                > ATOM_C2758.power.core_dynamic_coeff)
        assert XEON_E5_2420.power.base_watts > ATOM_C2758.power.base_watts

    def test_atom_dram_partly_core_clocked(self):
        assert ATOM_C2758.core.hierarchy.dram_latency_cycles > 0
        assert XEON_E5_2420.core.hierarchy.dram_latency_cycles == 0


class TestRegistry:
    def test_lookup(self):
        assert machine("atom") is ATOM_C2758
        assert machine("xeon") is XEON_E5_2420

    def test_unknown_machine(self):
        with pytest.raises(KeyError):
            machine("epyc")

    def test_registry_contents(self):
        assert set(MACHINES) == {"atom", "xeon"}

    def test_framework_profile_is_branchy_low_ilp(self):
        assert FRAMEWORK_PROFILE.ilp < 1.5
        assert FRAMEWORK_PROFILE.frontend_mpki > 10
