"""Unit tests for the synthetic dataset generators."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.workloads.datagen import (generate_labeled_documents,
                                     generate_records,
                                     generate_teragen_records,
                                     generate_text_lines,
                                     generate_transactions, zipf_vocabulary)


class TestVocabulary:
    def test_size_and_uniqueness(self):
        vocab = zipf_vocabulary(200)
        assert len(vocab) == 200
        assert len(set(vocab)) == 200

    def test_deterministic(self):
        assert zipf_vocabulary(50, seed=3) == zipf_vocabulary(50, seed=3)

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_vocabulary(0)


class TestTextLines:
    def test_shape(self):
        lines = generate_text_lines(100, words_per_line=7)
        assert len(lines) == 100
        assert all(len(l.split()) == 7 for l in lines)

    def test_zipf_skew(self):
        """The most common word should dominate a uniform share."""
        lines = generate_text_lines(500, vocabulary_size=100)
        counts = Counter(" ".join(lines).split())
        top = counts.most_common(1)[0][1]
        assert top > 3 * (sum(counts.values()) / 100)

    def test_deterministic(self):
        assert generate_text_lines(10, seed=5) == generate_text_lines(
            10, seed=5)
        assert generate_text_lines(10, seed=5) != generate_text_lines(
            10, seed=6)


class TestRecords:
    def test_sort_records(self):
        records = generate_records(50, value_bytes=20)
        assert len(records) == 50
        assert all(len(v) == 20 for _k, v in records)

    def test_teragen_key_shape(self):
        records = generate_teragen_records(30)
        assert all(len(k) == 10 for k, _v in records)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            generate_records(-1)


class TestTransactions:
    def test_shape(self):
        txs = generate_transactions(40, n_items=20, mean_length=5)
        assert len(txs) == 40
        assert all(len(set(t)) == len(t) for t in txs)  # sets, no dups

    def test_planted_itemsets_frequent(self):
        planted = [("item000", "item001")]
        txs = generate_transactions(300, planted_itemsets=planted,
                                    planted_probability=0.5, seed=9)
        joint = sum(1 for t in txs
                    if "item000" in t and "item001" in t)
        assert joint >= 0.4 * len(txs)

    def test_planted_probability_validated(self):
        with pytest.raises(ValueError):
            generate_transactions(10, planted_probability=1.5)


class TestLabeledDocuments:
    def test_labels_balanced(self):
        docs = generate_labeled_documents(100, classes=("x", "y"))
        labels = Counter(label for label, _d in docs)
        assert labels["x"] == labels["y"] == 50

    def test_class_vocabulary_skew(self):
        """Documents should draw mostly from their class's word slice."""
        docs = generate_labeled_documents(
            200, classes=("spam", "ham"), vocabulary_size=100, seed=2)
        spam_words = Counter()
        ham_words = Counter()
        for label, doc in docs:
            (spam_words if label == "spam" else ham_words).update(doc.split())
        spam_top = {w for w, _ in spam_words.most_common(10)}
        ham_top = {w for w, _ in ham_words.most_common(10)}
        assert spam_top != ham_top

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_labeled_documents(10, classes=())
