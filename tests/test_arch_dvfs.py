"""Unit tests for the DVFS table."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.arch.dvfs import (GHZ, PAPER_FREQUENCIES_GHZ, DvfsTable,
                             OperatingPoint, linear_table)


class TestOperatingPoint:
    def test_ghz_conversion(self):
        assert OperatingPoint(1.8e9, 1.0).freq_ghz == pytest.approx(1.8)

    def test_validation(self):
        with pytest.raises(ValueError):
            OperatingPoint(0, 1.0)
        with pytest.raises(ValueError):
            OperatingPoint(1e9, 0)


class TestDvfsTable:
    def _table(self):
        return linear_table([1.2, 1.4, 1.6, 1.8], v_min=0.8, v_max=1.0)

    def test_paper_frequencies(self):
        assert PAPER_FREQUENCIES_GHZ == (1.2, 1.4, 1.6, 1.8)

    def test_endpoints(self):
        table = self._table()
        assert table.voltage_at(1.2 * GHZ) == pytest.approx(0.8)
        assert table.voltage_at(1.8 * GHZ) == pytest.approx(1.0)

    def test_interpolation_midpoint(self):
        table = self._table()
        assert table.voltage_at(1.5 * GHZ) == pytest.approx(0.9)

    def test_out_of_range_rejected(self):
        table = self._table()
        with pytest.raises(ValueError):
            table.voltage_at(1.0 * GHZ)
        with pytest.raises(ValueError):
            table.voltage_at(2.0 * GHZ)

    def test_supports(self):
        table = self._table()
        assert table.supports(1.2 * GHZ)
        assert table.supports(1.55 * GHZ)
        assert not table.supports(2.0 * GHZ)

    def test_duplicate_frequencies_rejected(self):
        with pytest.raises(ValueError):
            DvfsTable([OperatingPoint(1e9, 0.8), OperatingPoint(1e9, 0.9)])

    def test_voltage_must_grow_with_frequency(self):
        with pytest.raises(ValueError):
            DvfsTable([OperatingPoint(1e9, 0.9), OperatingPoint(2e9, 0.8)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            DvfsTable([])

    def test_single_point_table(self):
        table = linear_table([1.8], v_min=0.8, v_max=1.0)
        assert table.voltage_at(1.8 * GHZ) == pytest.approx(1.0)

    def test_operating_point_helper(self):
        op = self._table().operating_point(1.4 * GHZ)
        assert op.freq_ghz == pytest.approx(1.4)
        assert 0.8 < op.voltage < 1.0

    @given(st.floats(min_value=1.2, max_value=1.8),
           st.floats(min_value=1.2, max_value=1.8))
    def test_voltage_monotone_in_frequency(self, f_a, f_b):
        table = self._table()
        lo, hi = min(f_a, f_b), max(f_a, f_b)
        assert table.voltage_at(lo * GHZ) <= table.voltage_at(hi * GHZ) + 1e-12
