"""Parallel determinism: jobs=1 and jobs=4 must be indistinguishable.

The executor merges worker results in cross-product order, never
completion order, so a parallel sweep is bit-identical to a serial one —
these tests pin that guarantee, plus the sweep/cache interaction.
"""

from __future__ import annotations

import pytest

from repro.analysis.executor import ResultCache
from repro.analysis.sweep import sweep
from repro.core.characterization import Characterizer

#: Small, seeded sweep: 2 machines x 2 frequencies at a sub-GB data size.
AXES = dict(machine=["atom", "xeon"], workload=["wordcount"],
            freq_ghz=[1.2, 1.8], data_per_node_gb=[0.25])


class TestParallelDeterminism:
    def test_jobs1_and_jobs4_identical(self):
        serial = sweep(Characterizer(), jobs=1, **AXES)
        parallel = sweep(Characterizer(), jobs=4, **AXES)
        assert serial.axes == parallel.axes
        assert list(serial.results) == list(parallel.results)  # same order
        # Deep dataclass equality: every field of every JobResult, with
        # exact (bitwise) float comparison — no tolerance.
        assert serial.results == parallel.results
        for cell, result in serial.results.items():
            twin = parallel.results[cell]
            assert result.execution_time_s == twin.execution_time_s
            assert result.dynamic_energy_j == twin.dynamic_energy_j
            assert result.phase_seconds == twin.phase_seconds

    def test_parallel_sweep_populates_characterizer(self):
        ch = Characterizer()
        res = sweep(ch, jobs=4, **AXES)
        assert len(ch) == len(res) == 4

    def test_characterizer_default_jobs_used(self):
        ch = Characterizer(jobs=4)
        res = sweep(ch, **AXES)  # jobs=None defers to ch.jobs
        assert len(res) == 4

    def test_parallel_sweep_writes_cache(self, tmp_path):
        ch = Characterizer(cache=ResultCache(tmp_path))
        first = sweep(ch, jobs=4, **AXES)
        assert ch.disk_cache.stores == 4
        # A fresh characterizer over the same cache dir re-simulates nothing.
        ch2 = Characterizer(cache=ResultCache(tmp_path))
        second = sweep(ch2, jobs=1, **AXES)
        assert ch2.disk_cache.hits == 4 and ch2.disk_cache.stores == 0
        assert second.results == first.results
