"""Load-generator tests: trace determinism, mixing, and end-to-end replay.

The end-to-end test boots a real serve stack in-process and replays a
small seeded trace against it — the miniature of the CI serve-smoke job.
"""

import asyncio
import json

import pytest

from repro.loadgen.client import LoadReport, run_load
from repro.loadgen.generator import (LoadConfig, build_trace, trace_lines,
                                     unique_bodies)
from repro.serve.run import start_stack, stop_stack
from repro.serve.service import ServiceConfig


class TestTraceDeterminism:
    def test_same_seed_yields_identical_trace(self):
        config = LoadConfig(seed=7, n_requests=50)
        assert trace_lines(build_trace(config)) == \
            trace_lines(build_trace(config))

    def test_different_seeds_differ(self):
        a = trace_lines(build_trace(LoadConfig(seed=1, n_requests=50)))
        b = trace_lines(build_trace(LoadConfig(seed=2, n_requests=50)))
        assert a != b

    def test_trace_is_stable_golden(self):
        # Pin one entry byte-for-byte: any change to the draw scheme is
        # a breaking change for recorded experiments and must be loud.
        q = build_trace(LoadConfig(seed=0, n_requests=1))[0]
        assert q.index == 0 and q.offset_s == 0.0 and q.method == "POST"
        assert q.path in ("/simulate", "/compare")
        doc = json.loads(q.body)
        assert doc["n_nodes"] == 3
        assert q.body == json.dumps(doc, sort_keys=True,
                                    separators=(",", ":"))

    def test_bodies_are_canonical_json(self):
        for q in build_trace(LoadConfig(seed=3, n_requests=40)):
            assert q.body == json.dumps(json.loads(q.body),
                                        sort_keys=True,
                                        separators=(",", ":"))


class TestTraceShape:
    def test_compare_fraction_extremes(self):
        all_compare = build_trace(LoadConfig(seed=0, n_requests=30,
                                             compare_fraction=1.0))
        assert {q.path for q in all_compare} == {"/compare"}
        all_simulate = build_trace(LoadConfig(seed=0, n_requests=30,
                                              compare_fraction=0.0))
        assert {q.path for q in all_simulate} == {"/simulate"}

    def test_compare_bodies_have_goal_but_no_machine(self):
        for q in build_trace(LoadConfig(seed=0, n_requests=60)):
            doc = json.loads(q.body)
            if q.path == "/compare":
                assert "goal" in doc and "machine" not in doc
            else:
                assert "machine" in doc and "goal" not in doc

    def test_workload_weights_skew_the_mix(self):
        config = LoadConfig(seed=0, n_requests=200,
                            workloads=("wordcount", "terasort"),
                            workload_weights=(9.0, 1.0))
        counts = {"wordcount": 0, "terasort": 0}
        for q in build_trace(config):
            counts[json.loads(q.body)["workload"]] += 1
        assert counts["wordcount"] > counts["terasort"] * 3

    def test_weight_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            LoadConfig(workloads=("a", "b"), workload_weights=(1.0,))

    def test_open_loop_offsets_increase(self):
        trace = build_trace(LoadConfig(seed=4, n_requests=50, mode="open",
                                       rate_per_s=100.0))
        offsets = [q.offset_s for q in trace]
        assert all(b > a for a, b in zip(offsets, offsets[1:]))
        # mean gap ~ 1/rate; allow generous slack for 50 samples
        assert 0.2 < offsets[-1] / (50 / 100.0) < 3.0

    def test_closed_loop_offsets_are_zero(self):
        trace = build_trace(LoadConfig(seed=4, n_requests=20))
        assert {q.offset_s for q in trace} == {0.0}

    def test_key_space_is_small_and_repetitive(self):
        trace = build_trace(LoadConfig(seed=0, n_requests=200))
        assert unique_bodies(trace) < len(trace) // 2

    def test_config_validation(self):
        with pytest.raises(ValueError):
            LoadConfig(mode="sideways")
        with pytest.raises(ValueError):
            LoadConfig(n_requests=0)
        with pytest.raises(ValueError):
            LoadConfig(compare_fraction=1.5)
        with pytest.raises(ValueError):
            LoadConfig(mode="open", rate_per_s=0.0)


class TestReportFields:
    def test_route_errors_tally_by_class(self):
        report = LoadReport()
        report.count_route_error("/simulate", "shed")
        report.count_route_error("/simulate", "shed")
        report.count_route_error("/simulate", "timeout")
        report.count_route_error("/compare", "transport")
        assert report.route_errors == {
            "/simulate": {"shed": 2, "timeout": 1},
            "/compare": {"transport": 1},
        }
        payload = report.to_dict()
        assert payload["route_errors"]["/simulate"] == {
            "shed": 2, "timeout": 1}

    def test_slowest_keeps_the_worst_request_per_route(self):
        report = LoadReport()
        report.note_latency("/simulate", 0.010, 200, "tok-000001")
        report.note_latency("/simulate", 0.250, 200, "tok-000007")
        report.note_latency("/simulate", 0.050, 200, "tok-000009")
        report.note_latency("/compare", 0.040, None, None)  # transport
        assert report.slowest["/simulate"] == {
            "request_id": "tok-000007", "status": 200, "latency_s": 0.25}
        assert report.slowest["/compare"]["request_id"] is None
        payload = report.to_dict()
        assert payload["slowest"]["/simulate"]["request_id"] == "tok-000007"

    def test_render_mentions_slowest_and_error_classes(self):
        report = LoadReport(requests=2, ok=1)
        report.note_latency("/simulate", 0.2, 200, "tok-000003")
        report.count_route_error("/simulate", "shed")
        text = report.render()
        assert "slowest /simulate" in text
        assert "tok-000003" in text
        assert "errors /simulate: shed=1" in text


class TestEndToEnd:
    def test_seeded_replay_has_zero_errors_and_coalesces(self, tmp_path):
        # Tiny key space (3 distinct bodies) + burst concurrency: the
        # first wave necessarily contains in-flight duplicates, so
        # coalescing must fire before anything completes.
        load = LoadConfig(seed=11, n_requests=24, compare_fraction=0.5,
                          workloads=("wordcount",), freqs_ghz=(1.8,),
                          sizes_gb=(0.05,), n_nodes=2, goals=("EDP",))
        trace = build_trace(load)
        assert unique_bodies(trace) <= 3

        async def main():
            handle = await start_stack(ServiceConfig(
                workers=2, shards=2, cache_dir=str(tmp_path / "cache")))
            try:
                return await run_load(handle.host, handle.port, trace,
                                      concurrency=12, timeout_s=60.0)
            finally:
                await stop_stack(handle, graceful=True)

        report = asyncio.run(main())
        assert report.requests == 24
        assert report.errors == 0
        assert report.ok + report.shed + report.unavailable == 24
        assert report.mismatches == 0
        assert report.coalesced >= 1
        assert report.cache_hits >= 1
        assert report.latency.total == report.requests
        payload = report.to_dict()
        assert payload["qps"] > 0
        assert payload["key_space"] == unique_bodies(trace)
        # Telemetry is on by default: every route's slowest request
        # carries the trace id the server minted for it.
        assert payload["slowest"]
        for worst in payload["slowest"].values():
            assert worst["request_id"]
