"""End-to-end tests of the six applications' real implementations."""

from __future__ import annotations

import itertools
import re
from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.mapreduce.functional import LocalRuntime, run_pipeline
from repro.workloads.datagen import (generate_labeled_documents,
                                     generate_records, generate_text_lines,
                                     generate_transactions)
from repro.workloads.fp_growth import (fp_growth_mine, item_frequencies,
                                       parallel_fp_growth)
from repro.workloads.grep import grep_jobs
from repro.workloads.naive_bayes import NaiveBayesModel, train_naive_bayes
from repro.workloads.sort import sort_job
from repro.workloads.terasort import (range_partitioner,
                                      sample_split_points, terasort_jobs)
from repro.workloads.wordcount import wordcount_job


class TestWordCount:
    def test_counts_match_ground_truth(self):
        lines = generate_text_lines(80, seed=3)
        records = [(i, l) for i, l in enumerate(lines)]
        output, _ = LocalRuntime(num_mappers=3).run(wordcount_job(), records)
        assert dict(output) == dict(Counter(" ".join(lines).split()))


class TestSort:
    def test_records_globally_recoverable(self):
        records = generate_records(60, seed=4)
        output, _ = LocalRuntime().run(sort_job(num_reducers=3), records)
        assert sorted(output) == sorted(records)

    def test_each_partition_sorted(self):
        records = generate_records(60, seed=4)
        output, _ = LocalRuntime().run(sort_job(num_reducers=1), records)
        keys = [k for k, _v in output]
        assert keys == sorted(keys)


class TestGrep:
    def test_matches_re_findall(self):
        lines = generate_text_lines(60, seed=6)
        pattern = r"[a-z]*ab[a-z]*"
        jobs = grep_jobs(pattern=pattern)
        records = [(i, l) for i, l in enumerate(lines)]
        output, stats = run_pipeline(LocalRuntime(), jobs, records)
        truth = Counter()
        for line in lines:
            truth.update(re.findall(pattern, line))
        assert {m: c for m, c in output} == dict(truth)

    def test_sorted_by_descending_frequency(self):
        lines = ["aba aba aba cab", "cab aba"]
        output, _ = run_pipeline(
            LocalRuntime(), grep_jobs(pattern=r"[a-z]*ab[a-z]*"),
            [(i, l) for i, l in enumerate(lines)])
        counts = [c for _m, c in output]
        assert counts == sorted(counts, reverse=True)


class TestTeraSort:
    def test_globally_sorted_output(self):
        records = generate_records(200, key_space=10 ** 6, seed=7)
        prepare, job = terasort_jobs(num_reducers=4)
        prepare(records)
        output, _ = LocalRuntime().run(job, records)
        keys = [k for k, _v in output]
        assert keys == sorted(keys)
        assert sorted(output) == sorted(records)

    def test_split_points_are_quantiles(self):
        splits = sample_split_points(list(range(100)), 4)
        assert splits == [25, 50, 75]

    def test_single_reducer_no_splits(self):
        assert sample_split_points([1, 2, 3], 1) == []

    def test_range_partitioner_monotone(self):
        part = range_partitioner([10, 20, 30])
        buckets = [part(k, 4) for k in (5, 10, 15, 25, 99)]
        assert buckets == [0, 0, 1, 2, 3]
        assert buckets == sorted(buckets)

    def test_invalid_reducers(self):
        with pytest.raises(ValueError):
            sample_split_points([1], 0)


class TestNaiveBayes:
    def test_training_beats_chance(self):
        docs = generate_labeled_documents(240, seed=11)
        train, test = docs[:200], docs[200:]
        model = train_naive_bayes(train)
        assert model.accuracy(test) > 0.8

    def test_model_counts_match_manual(self):
        docs = [("spam", "buy now"), ("ham", "hello friend"),
                ("spam", "buy buy")]
        model = train_naive_bayes(docs, num_mappers=1, num_reducers=1)
        assert model.class_doc_counts == {"spam": 2, "ham": 1}
        assert model.token_counts["spam"]["buy"] == 3

    def test_classify_prefers_seen_vocabulary(self):
        docs = [("a", "xx yy xx"), ("b", "zz ww zz")] * 5
        model = train_naive_bayes(docs)
        assert model.classify("xx yy") == "a"
        assert model.classify("zz ww") == "b"

    def test_empty_model_rejected(self):
        with pytest.raises(ValueError):
            NaiveBayesModel().classify("anything")

    def test_log_prior_normalization(self):
        docs = [("a", "x"), ("a", "y"), ("b", "z")]
        model = train_naive_bayes(docs)
        import math
        priors = [math.exp(model.log_prior(c)) for c in model.classes]
        assert sum(priors) == pytest.approx(1.0, abs=0.01)


def _brute_force_frequent(transactions, min_support):
    """Reference miner: enumerate all itemsets up to size 3."""
    items = sorted({i for t in transactions for i in t})
    out = {}
    for size in (1, 2, 3):
        for combo in itertools.combinations(items, size):
            support = sum(1 for t in transactions
                          if set(combo).issubset(t))
            if support >= min_support:
                out[frozenset(combo)] = support
    return out


class TestFPGrowth:
    def test_item_frequencies(self):
        txs = [["a", "b"], ["a"], ["b", "c"]]
        assert item_frequencies(txs) == {"a": 2, "b": 2, "c": 1}

    def test_matches_brute_force(self):
        txs = generate_transactions(60, n_items=8, mean_length=4, seed=13)
        min_support = 8
        mined = fp_growth_mine(txs, min_support)
        brute = _brute_force_frequent(txs, min_support)
        mined_small = {k: v for k, v in mined.items() if len(k) <= 3}
        assert mined_small == brute

    def test_planted_itemset_found(self):
        planted = ("item000", "item001", "item002")
        txs = generate_transactions(200, planted_itemsets=[planted],
                                    planted_probability=0.6, seed=17)
        mined = fp_growth_mine(txs, min_support=80)
        assert frozenset(planted) in mined

    def test_parallel_equals_single_machine(self):
        txs = generate_transactions(80, n_items=10, mean_length=5, seed=19)
        min_support = 10
        single = fp_growth_mine(txs, min_support)
        parallel = parallel_fp_growth(txs, min_support, num_groups=3)
        assert parallel == single

    def test_min_support_validated(self):
        with pytest.raises(ValueError):
            fp_growth_mine([["a"]], 0)
        with pytest.raises(ValueError):
            parallel_fp_growth([["a"]], 0)

    @given(st.lists(st.lists(st.sampled_from("abcdef"), min_size=1,
                             max_size=4).map(lambda t: sorted(set(t))),
                    min_size=1, max_size=25),
           st.integers(min_value=1, max_value=5))
    @settings(max_examples=25)
    def test_supports_are_consistent(self, txs, min_support):
        """Every reported support must equal the true subset count."""
        mined = fp_growth_mine(txs, min_support)
        for itemset, support in mined.items():
            true = sum(1 for t in txs if itemset.issubset(t))
            assert support == true
            assert support >= min_support
