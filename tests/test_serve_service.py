"""Service + app tests: coalescing, backpressure, drain, endpoints.

All async tests run under ``asyncio.run`` in plain functions (CI has no
pytest-asyncio).  Deterministic coalescing assertions use the service
API directly — inside one event loop, tasks created together all pass
the coalescing probe before the drain loop gets a turn, so the outcome
does not depend on host timing.  HTTP-level tests ride a real loopback
server via :func:`repro.serve.run.start_stack`.
"""

import asyncio
import json

import pytest

from repro.analysis.executor import cache_key
from repro.core.characterization import RunKey, simulate_cell
from repro.core.metrics import edxp
from repro.loadgen.client import _Connection
from repro.obs.registry import parse_exposition
from repro.serve.run import start_stack, stop_stack
from repro.serve.service import (Draining, Overloaded, RequestTimeout,
                                 ServiceConfig, SimulationService)

# A deliberately tiny cell so pool round-trips stay in the tens of ms.
KEY = RunKey(machine="atom", workload="wordcount", freq_ghz=1.2,
             data_per_node_gb=0.05, n_nodes=2)
BODY = json.dumps({"machine": "atom", "workload": "wordcount",
                   "freq_ghz": 1.2, "data_per_node_gb": 0.05,
                   "n_nodes": 2})


def _config(tmp_path, **overrides):
    base = dict(workers=1, queue_limit=32, shards=2,
                cache_dir=str(tmp_path / "cache"))
    base.update(overrides)
    return ServiceConfig(**base)


async def _with_service(config, fn):
    service = SimulationService(config)
    await service.start()
    try:
        return await fn(service)
    finally:
        await service.stop()


# -- service-level guarantees ---------------------------------------------

def test_concurrent_identical_submits_coalesce_to_one_flight(tmp_path):
    async def scenario(service):
        outcomes = await asyncio.gather(
            *(service.submit(KEY) for _ in range(8)))
        return outcomes

    outcomes = asyncio.run(
        _with_service(_config(tmp_path), scenario))
    sources = sorted(source for _res, source in outcomes)
    assert sources == ["coalesced"] * 7 + ["computed"]
    results = {id(res) for res, _source in outcomes}
    assert len(results) == 1, "waiters must share the one result object"


def test_coalesced_flight_makes_exactly_one_executor_submission(tmp_path):
    async def scenario(service):
        await asyncio.gather(*(service.submit(KEY) for _ in range(8)))
        return (service.stats.executor_submissions,
                service.stats.executor_cells,
                service.stats.coalesced_total)

    submissions, cells, coalesced = asyncio.run(
        _with_service(_config(tmp_path), scenario))
    assert submissions == 1
    assert cells == 1
    assert coalesced == 7


def test_result_matches_direct_simulate_cell(tmp_path):
    async def scenario(service):
        result, source = await service.submit(KEY)
        return result, source

    result, source = asyncio.run(
        _with_service(_config(tmp_path), scenario))
    assert source == "computed"
    direct = simulate_cell(KEY)
    assert result.execution_time_s == direct.execution_time_s
    assert result.dynamic_energy_j == direct.dynamic_energy_j


def test_second_run_is_served_from_cache(tmp_path):
    config = _config(tmp_path)

    async def first(service):
        return await service.submit(KEY)

    async def second(service):
        return await service.submit(KEY)

    asyncio.run(_with_service(config, first))
    result, source = asyncio.run(_with_service(config, second))
    assert source == "cache"
    assert result.execution_time_s == simulate_cell(KEY).execution_time_s


def test_cache_shards_are_populated_on_disk(tmp_path):
    config = _config(tmp_path, shards=4)
    keys = [RunKey(machine="atom", workload="wordcount", freq_ghz=f,
                   data_per_node_gb=0.05, n_nodes=2)
            for f in (1.2, 1.4, 1.6, 1.8)]

    async def scenario(service):
        await asyncio.gather(*(service.submit(k) for k in keys))

    asyncio.run(_with_service(config, scenario))
    shard_dirs = sorted(p.name for p in (tmp_path / "cache").iterdir())
    # Shard dirs appear lazily on first store; every one must follow the
    # stable naming scheme, and the keys must spread over >1 shard.
    assert shard_dirs
    assert all(name in {"shard-00", "shard-01", "shard-02", "shard-03"}
               for name in shard_dirs)
    assert len(shard_dirs) >= 2, "keys should spread over shards"
    entries = sum(1 for p in (tmp_path / "cache").rglob("*.pkl"))
    assert entries == 4


def test_admission_beyond_queue_limit_sheds(tmp_path):
    config = _config(tmp_path, queue_limit=1)
    keys = [RunKey(machine="atom", workload="wordcount", freq_ghz=f,
                   data_per_node_gb=0.05, n_nodes=2)
            for f in (1.2, 1.4, 1.6)]

    async def scenario(service):
        outcomes = await asyncio.gather(
            *(service.submit(k) for k in keys), return_exceptions=True)
        return outcomes, service.stats.shed_total

    outcomes, shed = asyncio.run(_with_service(config, scenario))
    shed_outcomes = [o for o in outcomes if isinstance(o, Overloaded)]
    served = [o for o in outcomes if isinstance(o, tuple)]
    assert len(shed_outcomes) == 2 and len(served) == 1
    assert shed == 2


def test_identical_requests_coalesce_instead_of_shedding(tmp_path):
    # queue_limit=1 with 5 *identical* submits: one admission, four
    # coalesced waiters, zero shed — coalescing happens before admission.
    config = _config(tmp_path, queue_limit=1)

    async def scenario(service):
        outcomes = await asyncio.gather(
            *(service.submit(KEY) for _ in range(5)))
        return outcomes, service.stats.shed_total

    outcomes, shed = asyncio.run(_with_service(config, scenario))
    assert shed == 0
    assert sorted(s for _r, s in outcomes) == (["coalesced"] * 4
                                               + ["computed"])


def test_waiter_timeout_is_504_and_result_still_lands_in_cache(tmp_path):
    config = _config(tmp_path, request_timeout_s=0.001)

    async def scenario(service):
        with pytest.raises(RequestTimeout):
            await service.submit(KEY)
        # The flight was not cancelled: wait for it to finish and land.
        for _ in range(500):
            if not service.inflight_cells:
                break
            await asyncio.sleep(0.02)
        assert service.stats.timeout_total == 1
        return service.cache.get(cache_key(KEY, service.conf), KEY,
                                 service.conf)

    cached = asyncio.run(_with_service(config, scenario))
    assert cached is not None
    assert cached.execution_time_s == simulate_cell(KEY).execution_time_s


def test_draining_service_rejects_new_work(tmp_path):
    async def scenario(service):
        service.draining = True
        with pytest.raises(Draining):
            await service.submit(KEY)

    asyncio.run(_with_service(_config(tmp_path), scenario))


def test_stop_fails_pending_waiters_with_draining(tmp_path):
    config = _config(tmp_path, request_timeout_s=30.0)

    async def main():
        service = SimulationService(config)
        await service.start()
        task = asyncio.ensure_future(service.submit(KEY))
        await asyncio.sleep(0)           # let it register + enqueue
        await service.stop()
        with pytest.raises(Draining):
            await task

    asyncio.run(main())


def test_config_validation():
    with pytest.raises(ValueError):
        ServiceConfig(workers=0)
    with pytest.raises(ValueError):
        ServiceConfig(queue_limit=0)
    with pytest.raises(ValueError):
        ServiceConfig(batch_max=0)
    with pytest.raises(ValueError):
        ServiceConfig(request_timeout_s=0.0)


# -- HTTP-level behaviour --------------------------------------------------

async def _stack(tmp_path, **overrides):
    return await start_stack(_config(tmp_path, **overrides))


def test_concurrent_identical_requests_get_byte_identical_bodies(tmp_path):
    async def main():
        handle = await _stack(tmp_path)
        try:
            conns = [_Connection(handle.host, handle.port)
                     for _ in range(6)]
            responses = await asyncio.gather(
                *(c.request("POST", "/simulate", BODY) for c in conns))
            for c in conns:
                c.close()
            # and once more, now served from cache
            conn = _Connection(handle.host, handle.port)
            cached = await conn.request("POST", "/simulate", BODY)
            conn.close()
            return responses, cached, handle.service.stats
        finally:
            await stop_stack(handle, graceful=False)

    responses, cached, stats = asyncio.run(main())
    assert [status for status, _b in responses] == [200] * 6
    bodies = {body for _s, body in responses}
    assert len(bodies) == 1, "identical requests must get identical bytes"
    assert cached[0] == 200 and cached[1] in bodies
    assert stats.executor_submissions == 1
    payload = json.loads(bodies.pop())
    assert payload["result"]["machine"] == "atom"
    assert payload["result"]["execution_time_s"] > 0


def test_http_error_statuses(tmp_path):
    async def main():
        handle = await _stack(tmp_path)
        conn = _Connection(handle.host, handle.port)
        try:
            out = {}
            out["bad_json"] = await conn.request("POST", "/simulate",
                                                 "{nope")
            out["unknown_field"] = await conn.request(
                "POST", "/simulate",
                json.dumps({"machine": "atom", "workload": "wordcount",
                            "sauce": 1}))
            out["bad_machine"] = await conn.request(
                "POST", "/simulate",
                json.dumps({"machine": "m5", "workload": "wordcount"}))
            out["missing"] = await conn.request(
                "POST", "/simulate", json.dumps({"machine": "atom"}))
            out["not_found"] = await conn.request("POST", "/nope", "{}")
            out["method"] = await conn.request("GET", "/simulate")
            return out
        finally:
            conn.close()
            await stop_stack(handle, graceful=False)

    out = asyncio.run(main())
    assert out["bad_json"][0] == 400
    assert out["unknown_field"][0] == 400
    assert b"sauce" in out["unknown_field"][1]
    assert out["bad_machine"][0] == 400
    assert out["missing"][0] == 400
    assert out["not_found"][0] == 404
    assert out["method"][0] == 405


def test_sweep_expands_axes_in_order(tmp_path):
    body = json.dumps({
        "machine": ["atom", "xeon"],
        "workload": "wordcount",
        "freq_ghz": [1.2, 1.8],
        "data_per_node_gb": 0.05,
        "n_nodes": 2,
    })

    async def main():
        handle = await _stack(tmp_path, workers=2)
        conn = _Connection(handle.host, handle.port)
        try:
            return await conn.request("POST", "/sweep", body)
        finally:
            conn.close()
            await stop_stack(handle, graceful=False)

    status, data = asyncio.run(main())
    assert status == 200
    payload = json.loads(data)
    assert payload["cells"] == 4
    grid = [(row["machine"], row["freq_ghz"])
            for row in payload["results"]]
    assert grid == [("atom", 1.2), ("atom", 1.8),
                    ("xeon", 1.2), ("xeon", 1.8)]


def test_sweep_over_cell_limit_is_413(tmp_path):
    body = json.dumps({
        "machine": ["atom", "xeon"],
        "workload": ["wordcount", "terasort"],
        "freq_ghz": [1.2, 1.4, 1.6, 1.8],
    })

    async def main():
        handle = await _stack(tmp_path, max_sweep_cells=8)
        conn = _Connection(handle.host, handle.port)
        try:
            return await conn.request("POST", "/sweep", body)
        finally:
            conn.close()
            await stop_stack(handle, graceful=False)

    status, data = asyncio.run(main())
    assert status == 413
    assert b"16 cells" in data


def test_compare_recommends_the_true_edp_winner(tmp_path):
    body = json.dumps({"workload": "wordcount", "freq_ghz": 1.2,
                       "data_per_node_gb": 0.05, "n_nodes": 2,
                       "goal": "EDP"})

    async def main():
        handle = await _stack(tmp_path, workers=2)
        conn = _Connection(handle.host, handle.port)
        try:
            return await conn.request("POST", "/compare", body)
        finally:
            conn.close()
            await stop_stack(handle, graceful=False)

    status, data = asyncio.run(main())
    assert status == 200
    payload = json.loads(data)
    costs = {}
    for machine in ("atom", "xeon"):
        res = simulate_cell(RunKey(machine=machine, workload="wordcount",
                                   freq_ghz=1.2, data_per_node_gb=0.05,
                                   n_nodes=2))
        costs[machine] = edxp(res.dynamic_energy_j,
                              res.execution_time_s, 1)
    expected = min(costs, key=lambda m: (costs[m], m))
    assert payload["winner"] == expected
    assert payload["candidates"][expected]["cost"] == costs[expected]
    assert expected in payload["recommendation"]


def test_compare_rejects_goal_and_machine_misuse(tmp_path):
    async def main():
        handle = await _stack(tmp_path)
        conn = _Connection(handle.host, handle.port)
        try:
            bad_goal = await conn.request(
                "POST", "/compare",
                json.dumps({"workload": "wordcount", "goal": "E42P"}))
            with_machine = await conn.request(
                "POST", "/compare",
                json.dumps({"workload": "wordcount", "machine": "atom"}))
            return bad_goal, with_machine
        finally:
            conn.close()
            await stop_stack(handle, graceful=False)

    bad_goal, with_machine = asyncio.run(main())
    assert bad_goal[0] == 400
    assert with_machine[0] == 400


def test_healthz_flips_to_503_while_draining(tmp_path):
    async def main():
        handle = await _stack(tmp_path)
        conn = _Connection(handle.host, handle.port)
        try:
            live = await conn.request("GET", "/healthz")
            handle.service.draining = True
            draining = await conn.request("GET", "/healthz")
            return live, draining
        finally:
            conn.close()
            await stop_stack(handle, graceful=False)

    live, draining = asyncio.run(main())
    assert live[0] == 200
    assert json.loads(live[1])["status"] == "ok"
    assert draining[0] == 503
    assert json.loads(draining[1])["status"] == "draining"


def test_metrics_exposes_both_formats(tmp_path):
    async def main():
        handle = await _stack(tmp_path)
        conn = _Connection(handle.host, handle.port)
        try:
            await conn.request("POST", "/simulate", BODY)
            text = await conn.request("GET", "/metrics")
            as_json = await conn.request("GET", "/metrics?format=json")
            return text, as_json
        finally:
            conn.close()
            await stop_stack(handle, graceful=False)

    (t_status, t_body), (j_status, j_body) = asyncio.run(main())
    assert t_status == 200
    lines = t_body.decode("utf-8").splitlines()
    assert any(ln.startswith("repro_executor_submissions_total 1")
               for ln in lines)
    assert any('repro_requests_total{route="/simulate",status="200"} 1'
               == ln for ln in lines)
    assert j_status == 200
    payload = json.loads(j_body)
    assert payload["executor_cells_total"] == 1
    assert payload["requests_total"]["/simulate 200"] == 1
    assert "/simulate" in payload["request_latency_seconds"]
    # The text form must be valid exposition format, not just greppable.
    parse_exposition(t_body.decode("utf-8"))


def test_graceful_stop_stack_drains_cleanly(tmp_path):
    async def main():
        handle = await _stack(tmp_path)
        conn = _Connection(handle.host, handle.port)
        status, _body = await conn.request("POST", "/simulate", BODY)
        conn.close()
        await stop_stack(handle, graceful=True)
        return status, handle.service.inflight_cells

    status, inflight = asyncio.run(main())
    assert status == 200
    assert inflight == 0
