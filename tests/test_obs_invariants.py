"""Tests for the trace invariant checker."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import pytest

from repro.mapreduce.driver import simulate_job
from repro.obs import (NodeInfo, Tracer, TraceInvariantError, check_intervals,
                       check_job, verify_job)
from repro.sim.faults import FaultPlan, NodeFault


@dataclass
class Rec:
    """Duck-typed interval record the Interval constructor would refuse."""

    start: float
    end: float
    node: str = "n0"
    device: str = "core"
    kind: str = "work"
    activity: float = 1.0
    task_id: Optional[str] = None
    phase: str = "map"


def _nodes(n_cores=2, failed_at=None):
    return [NodeInfo("n0", "atom", n_cores, failed_at)]


def _uncore(start, end, phase="other", node="n0"):
    return Rec(start, end, node=node, device="uncore", kind="job.active",
               phase=phase)


class TestCleanSets:
    def test_trivial_set_passes(self):
        ivs = [Rec(0.0, 4.0), Rec(4.0, 10.0, phase="reduce"),
               _uncore(0.0, 10.0)]
        report = check_intervals(ivs, 10.0, _nodes())
        assert report.ok, report.render()
        assert report.intervals_checked == 3
        assert "OK" in report.render()

    def test_touching_core_intervals_not_concurrent(self):
        # Half-open [0,5) and [5,10) on a 1-core node: legal.
        ivs = [Rec(0.0, 5.0), Rec(5.0, 10.0), _uncore(0.0, 10.0)]
        assert check_intervals(ivs, 10.0, _nodes(n_cores=1)).ok


class TestCorruptedSets:
    def test_beyond_makespan_rejected(self):
        ivs = [Rec(0.0, 12.0), _uncore(0.0, 10.0)]
        report = check_intervals(ivs, 10.0, _nodes())
        assert not report.ok
        [v] = report.by_rule("bounds")
        assert v.node == "n0" and "12.0" in v.message

    def test_backwards_interval_rejected(self):
        ivs = [Rec(5.0, 1.0), _uncore(0.0, 10.0)]
        report = check_intervals(ivs, 10.0, _nodes())
        assert report.by_rule("shape")

    def test_bad_activity_and_phase_rejected(self):
        ivs = [Rec(0.0, 1.0, activity=1.5), Rec(1.0, 2.0, phase="shuffle"),
               _uncore(0.0, 10.0)]
        report = check_intervals(ivs, 10.0, _nodes())
        assert len(report.by_rule("shape")) == 2

    def test_core_oversubscription_rejected(self):
        # Three concurrent core intervals on a 2-core node.
        ivs = [Rec(0.0, 5.0), Rec(1.0, 6.0), Rec(2.0, 7.0),
               _uncore(0.0, 10.0)]
        report = check_intervals(ivs, 10.0, _nodes(n_cores=2))
        [v] = report.by_rule("core-capacity")
        assert "3 concurrent" in v.message and v.time == 2.0

    def test_task_serial_violation_rejected(self):
        ivs = [Rec(0.0, 5.0, task_id="s0.m1"), Rec(3.0, 8.0, task_id="s0.m1"),
               _uncore(0.0, 10.0)]
        report = check_intervals(ivs, 10.0, _nodes())
        [v] = report.by_rule("task-serial")
        assert "s0.m1" in v.message

    def test_core_after_crash_rejected(self):
        ivs = [Rec(0.0, 7.0), _uncore(0.0, 4.0)]
        report = check_intervals(ivs, 10.0, _nodes(failed_at=4.0))
        [v] = report.by_rule("core-crash-clip")
        assert "outlives" in v.message

    def test_drain_devices_exempt_from_crash_clip(self):
        ivs = [Rec(3.0, 7.0, device="disk"), Rec(3.0, 7.0, device="nic"),
               Rec(5.0, 7.0, device="fw", kind="iopath", phase="reduce"),
               _uncore(0.0, 4.0)]
        report = check_intervals(ivs, 10.0, _nodes(failed_at=4.0))
        assert not report.by_rule("core-crash-clip"), report.render()

    def test_new_framework_work_after_crash_rejected(self):
        ivs = [Rec(6.0, 8.0, device="fw", kind="count.setup", phase="other"),
               _uncore(0.0, 4.0)]
        report = check_intervals(ivs, 10.0, _nodes(failed_at=4.0))
        [v] = report.by_rule("core-crash-clip")
        assert "starts after" in v.message

    def test_uncore_gap_rejected(self):
        ivs = [_uncore(0.0, 4.0), _uncore(6.0, 10.0)]
        report = check_intervals(ivs, 10.0, _nodes())
        [v] = report.by_rule("uncore-partition")
        assert "gap" in v.message and v.time == 4.0

    def test_uncore_overlap_rejected(self):
        ivs = [_uncore(0.0, 6.0, "map"), _uncore(4.0, 10.0, "other")]
        report = check_intervals(ivs, 10.0, _nodes())
        [v] = report.by_rule("uncore-partition")
        assert "double-charged" in v.message

    def test_uncore_short_of_makespan_rejected(self):
        ivs = [_uncore(0.0, 8.0)]
        report = check_intervals(ivs, 10.0, _nodes())
        [v] = report.by_rule("uncore-partition")
        assert "makespan" in v.message

    def test_uncore_missing_entirely_rejected(self):
        report = check_intervals([Rec(0.0, 1.0)], 10.0, _nodes())
        [v] = report.by_rule("uncore-partition")
        assert "no uncore windows" in v.message

    def test_uncore_clipped_at_crash_accepted(self):
        ivs = [_uncore(0.0, 4.0)]
        assert check_intervals(ivs, 10.0, _nodes(failed_at=4.0)).ok

    def test_verify_raises_with_report_attached(self):
        t = Tracer()
        simulate_job("atom", "wordcount", data_per_node_gb=0.0625, obs=t)
        t.job.intervals.append(
            Rec(0.0, t.job.makespan + 5.0, node="atom0"))
        with pytest.raises(TraceInvariantError) as info:
            verify_job(t.job)
        assert info.value.report.by_rule("bounds")


class TestRealRuns:
    def test_quiet_run_passes(self):
        t = Tracer()
        simulate_job("atom", "terasort", data_per_node_gb=0.25, obs=t)
        report = verify_job(t.job)
        assert report.intervals_checked == len(t.job.intervals)

    def test_crash_run_passes(self):
        t = Tracer()
        plan = FaultPlan(node_faults=(NodeFault("atom1", crash_at_s=60.0),))
        simulate_job("atom", "wordcount", fault_plan=plan, obs=t)
        report = check_job(t.job)
        assert report.ok, report.render()
        assert t.job.node_info("atom1").failed_at == 60.0

    def test_flaky_tasks_run_passes(self):
        t = Tracer()
        plan = FaultPlan(seed=1, task_fail_prob=0.15)
        simulate_job("xeon", "wordcount", fault_plan=plan,
                     data_per_node_gb=0.5, obs=t)
        report = check_job(t.job)
        assert report.ok, report.render()
