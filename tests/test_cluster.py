"""Unit tests for server nodes and cluster composition."""

from __future__ import annotations

import pytest

from repro.arch.presets import ATOM_C2758, XEON_E5_2420
from repro.cluster.server import Cluster, ServerNode
from repro.sim.engine import SimulationError, Simulator
from repro.workloads.base import IO_PATH_PROFILE


class TestServerNode:
    def test_basic_construction(self):
        sim = Simulator()
        node = ServerNode(sim, XEON_E5_2420, "x0", 1.8)
        assert node.n_cores == 12
        assert node.freq_ghz == pytest.approx(1.8)
        assert node.cores.capacity == 12

    def test_unsupported_frequency_rejected(self):
        with pytest.raises(SimulationError):
            ServerNode(Simulator(), ATOM_C2758, "a0", 2.4)

    def test_core_count_clamped(self):
        with pytest.raises(SimulationError):
            ServerNode(Simulator(), ATOM_C2758, "a0", 1.8, cores=9)
        with pytest.raises(SimulationError):
            ServerNode(Simulator(), ATOM_C2758, "a0", 1.8, cores=0)

    def test_iopath_scales_with_frequency(self):
        slow = ServerNode(Simulator(), ATOM_C2758, "a", 1.2)
        fast = ServerNode(Simulator(), ATOM_C2758, "a", 1.8)
        assert fast.iopath.bandwidth == pytest.approx(
            slow.iopath.bandwidth * 1.5)

    def test_iopath_scales_sublinearly_with_cores(self):
        full = ServerNode(Simulator(), ATOM_C2758, "a", 1.8)
        half = ServerNode(Simulator(), ATOM_C2758, "a", 1.8, cores=4)
        ratio = half.iopath.bandwidth / full.iopath.bandwidth
        assert 0.5 < ratio < 1.0  # (4/8)^0.8

    def test_core_perf_uses_node_frequency(self):
        node = ServerNode(Simulator(), XEON_E5_2420, "x0", 1.2)
        perf = node.core_perf(IO_PATH_PROFILE)
        assert perf.freq_hz == pytest.approx(1.2e9)

    def test_compute_seconds_positive(self):
        node = ServerNode(Simulator(), ATOM_C2758, "a0", 1.8)
        assert node.compute_seconds(1e9, IO_PATH_PROFILE) > 0


class TestCluster:
    def test_homogeneous_naming(self):
        sim = Simulator()
        cluster = Cluster.homogeneous(sim, ATOM_C2758, 3, 1.8)
        assert [n.name for n in cluster.nodes] == ["atom0", "atom1", "atom2"]
        assert cluster.total_cores == 24

    def test_node_lookup(self):
        sim = Simulator()
        cluster = Cluster.homogeneous(sim, XEON_E5_2420, 2, 1.8)
        assert cluster.node("xeon1").name == "xeon1"
        with pytest.raises(KeyError):
            cluster.node("xeon9")

    def test_heterogeneous_mix(self):
        sim = Simulator()
        cluster = Cluster.heterogeneous(sim, [
            {"spec": XEON_E5_2420, "n_nodes": 1, "freq_ghz": 1.8},
            {"spec": ATOM_C2758, "n_nodes": 2, "freq_ghz": 1.6,
             "cores_per_node": 4},
        ])
        assert len(cluster.nodes) == 3
        assert len(cluster.nodes_of("atom")) == 2
        assert cluster.nodes_of("atom")[0].n_cores == 4
        assert cluster.nodes_of("atom")[0].freq_ghz == pytest.approx(1.6)

    def test_node_power_mapping(self):
        sim = Simulator()
        cluster = Cluster.homogeneous(sim, ATOM_C2758, 3, 1.8)
        mapping = cluster.node_power()
        assert set(mapping) == {"atom0", "atom1", "atom2"}

    def test_empty_cluster_rejected(self):
        with pytest.raises(SimulationError):
            Cluster(Simulator(), [])

    def test_duplicate_names_rejected(self):
        sim = Simulator()
        nodes = [ServerNode(sim, ATOM_C2758, "same", 1.8),
                 ServerNode(sim, ATOM_C2758, "same", 1.8)]
        with pytest.raises(SimulationError):
            Cluster(sim, nodes)

    def test_invalid_node_count(self):
        with pytest.raises(SimulationError):
            Cluster.homogeneous(Simulator(), ATOM_C2758, 0, 1.8)
