"""Unit and property tests for the cache hierarchy model."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.arch.caches import (KIB, MIB, CacheHierarchy, CacheLevel,
                               MissCurve)


def _hierarchy(dram_ns=80.0, dram_cycles=0.0):
    return CacheHierarchy(
        [CacheLevel("L1d", 32 * KIB, latency_cycles=4),
         CacheLevel("L2", 256 * KIB, latency_cycles=12),
         CacheLevel("L3", 15 * MIB, latency_cycles=30)],
        dram_latency_ns=dram_ns, dram_latency_cycles=dram_cycles)


class TestCacheLevel:
    def test_core_domain_latency_scales_with_frequency(self):
        level = CacheLevel("L2", 256 * KIB, latency_cycles=12)
        assert level.latency_seconds(2e9) == pytest.approx(6e-9)
        assert level.latency_seconds(1e9) == pytest.approx(12e-9)

    def test_wall_domain_latency_fixed(self):
        level = CacheLevel("Lw", 1 * MIB, latency_ns=50.0,
                           core_clock_domain=False)
        assert level.latency_seconds(1e9) == level.latency_seconds(3e9)

    def test_validation(self):
        with pytest.raises(ValueError):
            CacheLevel("bad", 0, latency_cycles=4)
        with pytest.raises(ValueError):
            CacheLevel("bad", 1024, latency_cycles=0)
        with pytest.raises(ValueError):
            CacheLevel("bad", 1024, core_clock_domain=False)


class TestMissCurve:
    def test_clamped_at_one_below_characteristic_size(self):
        curve = MissCurve(working_set_bytes=64 * KIB, alpha=0.5)
        assert curve.miss_ratio_beyond(32 * KIB) == 1.0

    def test_power_law_decay(self):
        curve = MissCurve(working_set_bytes=1 * KIB, alpha=1.0)
        assert curve.miss_ratio_beyond(2 * KIB) == pytest.approx(0.5)
        assert curve.miss_ratio_beyond(4 * KIB) == pytest.approx(0.25)

    def test_from_l1_anchor_roundtrip(self):
        curve = MissCurve.from_l1_miss_ratio(0.08, alpha=0.6)
        assert curve.miss_ratio_beyond(32 * KIB) == pytest.approx(0.08)

    def test_validation(self):
        with pytest.raises(ValueError):
            MissCurve(0, 0.5)
        with pytest.raises(ValueError):
            MissCurve(1024, 0)
        with pytest.raises(ValueError):
            MissCurve.from_l1_miss_ratio(0.0, 0.5)
        with pytest.raises(ValueError):
            MissCurve.from_l1_miss_ratio(1.5, 0.5)

    @given(st.floats(min_value=0.001, max_value=1.0),
           st.floats(min_value=0.1, max_value=2.0),
           st.floats(min_value=1.0, max_value=1e9),
           st.floats(min_value=1.0, max_value=1e9))
    def test_monotone_non_increasing_in_size(self, m1, alpha, s_a, s_b):
        curve = MissCurve.from_l1_miss_ratio(m1, alpha)
        small, big = min(s_a, s_b), max(s_a, s_b)
        assert curve.miss_ratio_beyond(small) >= curve.miss_ratio_beyond(big)

    @given(st.floats(min_value=0.001, max_value=1.0),
           st.floats(min_value=0.1, max_value=2.0),
           st.floats(min_value=1.0, max_value=1e12))
    def test_ratio_stays_in_unit_interval(self, m1, alpha, size):
        curve = MissCurve.from_l1_miss_ratio(m1, alpha)
        assert 0.0 <= curve.miss_ratio_beyond(size) <= 1.0


class TestCacheHierarchy:
    def test_levels_must_grow(self):
        with pytest.raises(ValueError):
            CacheHierarchy(
                [CacheLevel("L1", 64 * KIB, latency_cycles=4),
                 CacheLevel("L2", 32 * KIB, latency_cycles=12)],
                dram_latency_ns=80.0)

    def test_needs_a_level(self):
        with pytest.raises(ValueError):
            CacheHierarchy([], dram_latency_ns=80.0)

    def test_hit_distribution_conserves_l1_misses(self):
        h = _hierarchy()
        curve = MissCurve.from_l1_miss_ratio(0.2, 0.5)
        dist = h.hit_distribution(curve)
        total = sum(frac for _name, frac in dist)
        assert total == pytest.approx(h.l1_miss_ratio(curve))
        assert dist[-1][0] == "DRAM"

    def test_bigger_llc_reduces_stalls(self):
        small = CacheHierarchy(
            [CacheLevel("L1", 32 * KIB, latency_cycles=4),
             CacheLevel("L2", 1 * MIB, latency_cycles=17)],
            dram_latency_ns=100.0)
        big = _hierarchy(dram_ns=100.0)
        curve = MissCurve.from_l1_miss_ratio(0.2, 0.5)
        assert (big.stall_seconds_per_access(curve, 1.8e9)
                < small.stall_seconds_per_access(curve, 1.8e9))

    def test_core_domain_dram_component_scales_with_frequency(self):
        fixed = _hierarchy(dram_ns=100.0, dram_cycles=0.0)
        scaled = _hierarchy(dram_ns=50.0, dram_cycles=90.0)
        assert fixed.dram_latency_seconds(1e9) == pytest.approx(100e-9)
        assert scaled.dram_latency_seconds(1e9) == pytest.approx(140e-9)
        assert scaled.dram_latency_seconds(3e9) == pytest.approx(80e-9)

    def test_stall_seconds_decrease_with_frequency(self):
        h = _hierarchy()
        curve = MissCurve.from_l1_miss_ratio(0.2, 0.5)
        slow = h.stall_seconds_per_access(curve, 1.2e9)
        fast = h.stall_seconds_per_access(curve, 1.8e9)
        assert fast < slow  # core-domain components shrink

    def test_invalid_frequency(self):
        h = _hierarchy()
        curve = MissCurve.from_l1_miss_ratio(0.2, 0.5)
        with pytest.raises(ValueError):
            h.stall_seconds_per_access(curve, 0.0)

    def test_describe_mentions_all_levels(self):
        text = _hierarchy().describe()
        for token in ("L1d", "L2", "L3", "DRAM"):
            assert token in text

    @given(st.floats(min_value=0.01, max_value=0.9),
           st.floats(min_value=0.2, max_value=1.2))
    def test_stalls_non_negative(self, m1, alpha):
        h = _hierarchy()
        curve = MissCurve.from_l1_miss_ratio(m1, alpha)
        assert h.stall_seconds_per_access(curve, 1.8e9) >= 0.0
