"""Tests for characterization, classifier, acceleration, cost, scheduler."""

from __future__ import annotations

import pytest

from repro.core.acceleration import (AccelConfig, accelerated_time,
                                     map_phase_speedup, speedup_ratio,
                                     sweep_acceleration)
from repro.core.characterization import Characterizer, RunKey
from repro.core.classifier import (classification_agrees, classify_measured,
                                   classify_spec, resource_mix)
from repro.core.cost import (PAPER_CORE_COUNTS, cost_table, spider_series)
from repro.core.scheduler import (BigestFirstPolicy, ExhaustiveOraclePolicy,
                                  LittlestFirstPolicy, PaperHeuristicPolicy,
                                  Placement, evaluate_policies)
from repro.workloads.base import Category


class TestCharacterizer:
    def test_caching_returns_same_object(self, characterizer):
        key = RunKey("atom", "wordcount")
        assert characterizer.run(key) is characterizer.run(key)

    def test_distinct_keys_distinct_runs(self, characterizer):
        a = characterizer.run(RunKey("atom", "wordcount", freq_ghz=1.2))
        b = characterizer.run(RunKey("atom", "wordcount", freq_ghz=1.8))
        assert a is not b

    def test_default_data_sizes(self, characterizer):
        assert characterizer.default_data_gb("wordcount") == 1.0
        assert characterizer.default_data_gb("naive_bayes") == 10.0

    def test_cost_point_area_prorated(self, characterizer):
        point = characterizer.cost_point(
            RunKey("atom", "wordcount", cores_per_node=4))
        assert point.area_mm2 == pytest.approx(80.0)  # 4 * 20 mm^2

    def test_speedup_helper(self, characterizer):
        assert characterizer.speedup_atom_to_xeon("wordcount") > 1.0

    def test_describe_is_readable(self):
        text = RunKey("xeon", "sort", freq_ghz=1.4).describe()
        assert "sort" in text and "xeon" in text and "1.4" in text


class TestClassifier:
    def test_declared_classes(self):
        assert classify_spec("sort") == Category.IO
        assert classify_spec("wordcount") == Category.COMPUTE
        assert classify_spec("terasort") == Category.HYBRID

    def test_measured_agrees_with_declared(self, characterizer):
        for wl in ("wordcount", "sort", "grep", "terasort"):
            result = characterizer.run(RunKey("xeon", wl))
            assert classification_agrees(result), wl

    def test_resource_mix_positive(self, wc_results):
        mix = resource_mix(wc_results["xeon"])
        assert mix.compute_fraction > 0
        assert mix.io_fraction > 0

    def test_sort_heaviest_io_mix(self, characterizer):
        sort = resource_mix(characterizer.run(RunKey("xeon", "sort")))
        wc = resource_mix(characterizer.run(RunKey("xeon", "wordcount")))
        assert sort.io_to_compute > wc.io_to_compute


class TestAcceleration:
    def test_no_acceleration_changes_nothing_much(self, wc_results):
        config = AccelConfig(accel_rate=1.0, residual_fraction=1.0,
                             link_bandwidth_bytes_s=1e15)
        r = wc_results["xeon"]
        assert accelerated_time(r, config) == pytest.approx(
            r.execution_time_s, rel=1e-6)

    def test_acceleration_reduces_time(self, wc_results):
        r = wc_results["xeon"]
        fast = accelerated_time(r, AccelConfig(accel_rate=50))
        assert fast < r.execution_time_s

    def test_accelerated_time_monotone_in_rate(self, wc_results):
        r = wc_results["atom"]
        times = [accelerated_time(r, AccelConfig(accel_rate=k))
                 for k in (1, 2, 10, 100)]
        assert times == sorted(times, reverse=True)

    def test_map_phase_speedup_bounded(self, wc_results):
        r = wc_results["xeon"]
        s = map_phase_speedup(r, AccelConfig(accel_rate=100,
                                             residual_fraction=0.25))
        assert 1.0 < s <= 4.0  # residual 25% caps the Amdahl limit

    def test_speedup_ratio_requires_matching_workloads(
            self, wc_results, sort_results):
        with pytest.raises(ValueError):
            speedup_ratio(wc_results["atom"], sort_results["xeon"],
                          AccelConfig(accel_rate=10))

    def test_sweep_is_monotone_for_map_heavy_jobs(self, sort_results):
        points = sweep_acceleration(sort_results["atom"],
                                    sort_results["xeon"])
        values = [v for _r, v in points]
        assert values == sorted(values, reverse=True)
        assert values[-1] < 1.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AccelConfig(accel_rate=0.5)
        with pytest.raises(ValueError):
            AccelConfig(accel_rate=2, residual_fraction=1.5)
        with pytest.raises(ValueError):
            AccelConfig(accel_rate=2, link_bandwidth_bytes_s=0)


class TestCostTable:
    @pytest.fixture(scope="class")
    def table(self, characterizer):
        return cost_table("wordcount", characterizer=characterizer)

    def test_all_cells_present(self, table):
        assert len(table.cells) == 2 * len(PAPER_CORE_COUNTS)

    def test_rows_positive(self, table):
        for metric in ("EDP", "ED2P", "EDAP", "ED2AP"):
            for machine in ("atom", "xeon"):
                assert all(v > 0 for v in table.row(metric, machine))

    def test_best_config_is_min(self, table):
        best = table.best_config("EDP")
        assert best.metric("EDP") == min(
            c.metric("EDP") for c in table.cells.values())

    def test_missing_cell(self, table):
        with pytest.raises(KeyError):
            table.cell("atom", 5)

    def test_spider_reference_is_unity(self, table):
        spider = spider_series(table)
        assert spider["8X"]["EDP"] == pytest.approx(1.0)
        assert spider["8X"]["ED2AP"] == pytest.approx(1.0)
        assert set(spider) == {"2A", "4A", "6A", "8A", "2X", "4X", "6X", "8X"}


class TestScheduler:
    def test_paper_policy_follows_pseudocode(self, characterizer):
        policy = PaperHeuristicPolicy()
        table = cost_table("wordcount", characterizer=characterizer)
        assert policy.decide("wordcount", "EDP", table) == Placement("atom", 8)
        assert policy.decide("sort", "EDP", table) == Placement("xeon", 4)
        assert policy.decide("grep", "ED2AP", table) == Placement("xeon", 2)
        assert policy.decide("grep", "EDP", table) == Placement("atom", 8)

    def test_oracle_has_no_regret(self, characterizer):
        reports = evaluate_policies(["wordcount", "sort"], goal="EDP",
                                    policies=[ExhaustiveOraclePolicy],
                                    characterizer=characterizer)
        assert reports[0].mean_regret == pytest.approx(1.0)

    def test_baselines_are_worse_than_oracle(self, characterizer):
        reports = evaluate_policies(
            ["wordcount", "sort", "grep"], goal="EDP",
            policies=[BigestFirstPolicy, LittlestFirstPolicy],
            characterizer=characterizer)
        for report in reports:
            assert report.mean_regret >= 1.0

    def test_paper_policy_beats_big_first_on_edp(self, characterizer):
        """Over the paper's full job mix the heuristic beats
        performance-max scheduling on energy efficiency (§3.5)."""
        workloads = ["wordcount", "sort", "grep", "terasort",
                     "naive_bayes", "fp_growth"]
        reports = {r.policy: r for r in evaluate_policies(
            workloads, goal="EDP",
            policies=[PaperHeuristicPolicy, BigestFirstPolicy],
            characterizer=characterizer)}
        assert (reports["paper-heuristic"].mean_regret
                < reports["big-first"].mean_regret)

    def test_invalid_goal_rejected(self, characterizer):
        table = cost_table("wordcount", characterizer=characterizer)
        with pytest.raises(ValueError):
            PaperHeuristicPolicy().decide("wordcount", "FLOPS", table)

    def test_placement_validation(self):
        with pytest.raises(ValueError):
            Placement("riscv", 4)
        with pytest.raises(ValueError):
            Placement("atom", 0)

    def test_placement_labels(self):
        assert Placement("atom", 8).label == "8A"
        assert Placement("xeon", 2).label == "2X"
