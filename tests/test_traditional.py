"""Tests for the SPEC/PARSEC traditional-benchmark layer."""

from __future__ import annotations

import pytest

from repro.arch.presets import ATOM_C2758, XEON_E5_2420
from repro.workloads.traditional import (PARSEC_21, SPEC_CPU2006,
                                         TraditionalResult, run_traditional,
                                         suite_average_ipc,
                                         suite_average_result)


class TestSuites:
    def test_suite_sizes(self):
        assert len(SPEC_CPU2006) >= 12   # a representative CPU2006 subset
        assert len(PARSEC_21) >= 10

    def test_canonical_members_present(self):
        for name in ("mcf", "libquantum", "gcc", "hmmer"):
            assert name in SPEC_CPU2006
        for name in ("blackscholes", "canneal", "streamcluster", "x264"):
            assert name in PARSEC_21

    def test_profiles_named_after_keys(self):
        for name, profile in SPEC_CPU2006.items():
            assert profile.name == name


class TestRunTraditional:
    def test_result_fields(self):
        result = run_traditional(XEON_E5_2420, SPEC_CPU2006["gcc"])
        assert isinstance(result, TraditionalResult)
        assert result.seconds > 0
        assert result.dynamic_power_w > 0
        assert result.dynamic_energy_j == pytest.approx(
            result.dynamic_power_w * result.seconds)

    def test_big_core_faster(self):
        for name in ("gcc", "mcf", "hmmer"):
            xeon = run_traditional(XEON_E5_2420, SPEC_CPU2006[name])
            atom = run_traditional(ATOM_C2758, SPEC_CPU2006[name])
            assert xeon.seconds < atom.seconds, name
            assert xeon.dynamic_power_w > atom.dynamic_power_w, name

    def test_memory_bound_outlier_gap(self):
        """mcf's pointer chasing widens the little core's gap vs hmmer."""
        def gap(name):
            xeon = run_traditional(XEON_E5_2420, SPEC_CPU2006[name])
            atom = run_traditional(ATOM_C2758, SPEC_CPU2006[name])
            return atom.seconds / xeon.seconds
        assert gap("mcf") > gap("hmmer")

    def test_threads_speed_up_parsec(self):
        profile = PARSEC_21["blackscholes"]
        one = run_traditional(XEON_E5_2420, profile, threads=1)
        four = run_traditional(XEON_E5_2420, profile, threads=4)
        assert four.seconds == pytest.approx(one.seconds / 4)
        assert four.dynamic_power_w > one.dynamic_power_w

    def test_threads_clamped_to_cores(self):
        profile = PARSEC_21["x264"]
        clamped = run_traditional(ATOM_C2758, profile, threads=100)
        full = run_traditional(ATOM_C2758, profile, threads=8)
        assert clamped.seconds == pytest.approx(full.seconds)

    def test_invalid_threads(self):
        with pytest.raises(ValueError):
            run_traditional(ATOM_C2758, SPEC_CPU2006["gcc"], threads=0)

    def test_frequency_scaling(self):
        slow = run_traditional(ATOM_C2758, SPEC_CPU2006["hmmer"],
                               freq_ghz=1.2)
        fast = run_traditional(ATOM_C2758, SPEC_CPU2006["hmmer"],
                               freq_ghz=1.8)
        assert fast.seconds < slow.seconds


class TestSuiteAverages:
    def test_average_ipc_bounds(self):
        for spec in (ATOM_C2758, XEON_E5_2420):
            ipc = suite_average_ipc(spec, SPEC_CPU2006)
            assert 0 < ipc <= spec.core.issue_width

    def test_average_result_triple(self):
        seconds, watts, ipc = suite_average_result(XEON_E5_2420,
                                                   SPEC_CPU2006)
        assert seconds > 0 and watts > 0 and ipc > 0

    def test_empty_suite_rejected(self):
        with pytest.raises(ValueError):
            suite_average_ipc(ATOM_C2758, {})
        with pytest.raises(ValueError):
            suite_average_result(ATOM_C2758, {})
