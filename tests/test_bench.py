"""Tests for the benchmark harness: suite, report schema, compare gate."""

from __future__ import annotations

import copy
import json

import pytest

from repro.bench import (BENCH_SCHEMA, BENCH_SCHEMA_VERSION, SCENARIOS,
                         compare_reports, load_report, render_comparison,
                         run_suite, write_report)
from repro.bench.runner import render_report
from repro.bench.scenarios import (cleanup_context, make_context,
                                   profiler_overhead, scenario_names)
from repro.cli import main


@pytest.fixture(scope="module")
def small_report():
    """One real (tiny) suite run shared by the schema tests."""
    return run_suite(names=["sweep.warm"], repeat=2, warmup=1)


class TestScenarios:
    def test_suite_is_large_and_uniquely_named(self):
        names = scenario_names()
        assert len(names) >= 5
        assert len(set(names)) == len(names)
        kinds = {s.kind for s in SCENARIOS}
        assert kinds == {"micro", "macro", "self"}

    def test_unknown_scenario_rejected_before_running(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            run_suite(names=["no.such.scenario"])

    def test_bad_counts_rejected(self):
        with pytest.raises(ValueError):
            run_suite(names=["sweep.warm"], repeat=0)
        with pytest.raises(ValueError):
            run_suite(names=["sweep.warm"], warmup=-1)


class TestReportSchema:
    def test_schema_and_provenance(self, small_report):
        assert small_report["schema"] == BENCH_SCHEMA
        assert small_report["schema_version"] == BENCH_SCHEMA_VERSION
        assert "rev" in small_report["git"]
        for key in ("platform", "python", "machine", "cpu_count"):
            assert key in small_report["host"]
        assert small_report["config"]["repeat"] == 2

    def test_scenario_stats(self, small_report):
        row = small_report["scenarios"]["sweep.warm"]
        assert len(row["reps_s"]) == 2
        assert row["min_s"] <= row["median_s"] <= row["max_s"]
        # Satellite: cache effectiveness rides along in the bench JSON.
        assert row["metrics"]["cache_hit_rate"] == 1.0
        assert row["metrics"]["cache_misses"] == 0.0

    def test_profile_breakdown_embedded(self, small_report):
        phases = small_report["profile"]["phases"]
        assert "cache.get" in phases
        assert phases["cache.get"]["calls"] >= 1

    def test_write_then_load_roundtrip(self, small_report, tmp_path):
        path = write_report(small_report, tmp_path / "BENCH_test.json")
        loaded = load_report(path)
        assert loaded["scenarios"].keys() == small_report["scenarios"].keys()

    def test_load_rejects_foreign_and_future_files(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{\"schema\": \"something-else\"}")
        with pytest.raises(ValueError, match="not a"):
            load_report(bad)
        future = tmp_path / "future.json"
        future.write_text(json.dumps(
            {"schema": BENCH_SCHEMA, "schema_version": 99}))
        with pytest.raises(ValueError, match="unsupported"):
            load_report(future)
        garbage = tmp_path / "garbage.json"
        garbage.write_text("not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_report(garbage)

    def test_render_report_mentions_every_scenario(self, small_report):
        assert "sweep.warm" in render_report(small_report)


def _fake_report(**medians):
    return {
        "schema": BENCH_SCHEMA,
        "schema_version": BENCH_SCHEMA_VERSION,
        "scenarios": {name: {"median_s": m} for name, m in medians.items()},
    }


class TestCompare:
    def test_injected_regression_fails_the_gate(self):
        old = _fake_report(**{"a": 0.100, "b": 0.050})
        new = _fake_report(**{"a": 0.100, "b": 0.080})  # +60%
        rows = compare_reports(old, new, threshold_pct=25.0)
        by_name = {r.name: r for r in rows}
        assert by_name["a"].status == "ok" and not by_name["a"].fails
        assert by_name["b"].status == "regression" and by_name["b"].fails
        assert by_name["b"].delta_pct == pytest.approx(60.0)
        assert "FAIL" in render_comparison(rows, threshold_pct=25.0)

    def test_improvement_is_reported_but_never_fails(self):
        rows = compare_reports(_fake_report(a=0.2), _fake_report(a=0.1),
                               threshold_pct=25.0)
        assert rows[0].status == "improved" and not rows[0].fails

    def test_missing_scenario_fails_only_when_dropped(self):
        old = _fake_report(kept=0.1, dropped=0.1)
        new = _fake_report(kept=0.1, added=0.1)
        by_name = {r.name: r for r in compare_reports(old, new)}
        assert by_name["dropped"].status == "missing"
        assert by_name["dropped"].fails           # vanished from new
        assert by_name["added"].status == "missing"
        assert not by_name["added"].fails         # baselines lag new ones

    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            compare_reports(_fake_report(a=1.0), _fake_report(a=1.0),
                            threshold_pct=-1.0)
        with pytest.raises(ValueError):
            compare_reports(_fake_report(a=1.0), _fake_report(a=1.0),
                            min_abs_delta_s=-0.001)

    def test_scenario_threshold_overrides_global(self):
        old = _fake_report(engine=0.100, macro=0.100)
        new = _fake_report(engine=0.115, macro=0.115)   # both +15%
        rows = compare_reports(old, new, threshold_pct=25.0,
                               scenario_thresholds={"engine": 10.0})
        by_name = {r.name: r for r in rows}
        assert by_name["macro"].status == "ok"
        assert by_name["engine"].status == "regression"
        assert by_name["engine"].fails

    def test_scenario_threshold_validated(self):
        with pytest.raises(ValueError, match="engine"):
            compare_reports(_fake_report(a=1.0), _fake_report(a=1.0),
                            scenario_thresholds={"engine": -5.0})

    def test_sub_floor_jitter_is_ok_whatever_the_percentage(self):
        # One timer tick on a 0.3 ms scenario reads as +33%; the 1 ms
        # noise floor keeps it from failing the gate.
        rows = compare_reports(_fake_report(tiny=0.0003),
                               _fake_report(tiny=0.0004),
                               threshold_pct=25.0)
        assert rows[0].status == "ok" and not rows[0].fails
        # ... and the same move does not count as an "improvement" either.
        rows = compare_reports(_fake_report(tiny=0.0004),
                               _fake_report(tiny=0.0003),
                               threshold_pct=25.0)
        assert rows[0].status == "ok"

    def test_zero_floor_gates_on_percentage_alone(self):
        rows = compare_reports(_fake_report(tiny=0.0003),
                               _fake_report(tiny=0.0004),
                               threshold_pct=25.0, min_abs_delta_s=0.0)
        assert rows[0].status == "regression" and rows[0].fails


class TestCli:
    def test_bench_list(self, capsys):
        assert main(["bench", "list"]) == 0
        out = capsys.readouterr().out
        for scenario in SCENARIOS:
            assert scenario.name in out

    def test_bench_run_writes_report(self, tmp_path, capsys):
        out_file = tmp_path / "BENCH_cli.json"
        assert main(["bench", "--scenario", "sweep.warm", "--repeat", "1",
                     "--warmup", "0", "--no-profile",
                     "-o", str(out_file)]) == 0
        assert "wrote" in capsys.readouterr().out
        report = load_report(out_file)
        assert list(report["scenarios"]) == ["sweep.warm"]
        assert report["profile"] is None

    def test_bench_run_subcommand_takes_same_flags(self, tmp_path, capsys):
        out_file = tmp_path / "BENCH_sub.json"
        assert main(["bench", "run", "--scenario", "sweep.warm",
                     "--repeat", "1", "--warmup", "0", "--no-profile",
                     "-o", str(out_file)]) == 0
        capsys.readouterr()
        assert out_file.exists()

    def test_bench_compare_exit_codes(self, tmp_path, capsys):
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        report = _fake_report(a=0.1, b=0.1)
        old.write_text(json.dumps(report))
        regressed = copy.deepcopy(report)
        regressed["scenarios"]["b"]["median_s"] = 0.2
        new.write_text(json.dumps(regressed))
        assert main(["bench", "compare", str(old), str(old)]) == 0
        assert main(["bench", "compare", str(old), str(new),
                     "--threshold", "25"]) == 1
        assert main(["bench", "compare", str(old), "/nonexistent.json"]) == 2
        capsys.readouterr()

    def test_bench_compare_scenario_threshold_flag(self, tmp_path, capsys):
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        report = _fake_report(engine=0.1, macro=0.1)
        old.write_text(json.dumps(report))
        moved = copy.deepcopy(report)
        moved["scenarios"]["engine"]["median_s"] = 0.115   # +15%
        new.write_text(json.dumps(moved))
        base = ["bench", "compare", str(old), str(new), "--threshold", "25"]
        assert main(base) == 0
        assert main(base + ["--scenario-threshold", "engine=10"]) == 1
        assert main(base + ["--scenario-threshold", "no-equals"]) == 2
        assert main(base + ["--scenario-threshold", "engine=abc"]) == 2
        capsys.readouterr()

    def test_unknown_scenario_is_a_clean_error(self, capsys):
        assert main(["bench", "--scenario", "bogus"]) == 2
        assert "unknown scenario" in capsys.readouterr().err


class TestProfilerOverhead:
    def test_overhead_self_check_under_budget(self):
        """The acceptance bar: profiling adds < 10% wall time.

        Best-of-N on both sides makes this a property of the
        instrumentation (guarded sites, batched engine timing), not of
        scheduler noise.  The budget is relative, so the engine
        throughput campaign — which roughly halved the unprofiled
        denominator without touching instrumentation cost — moved the
        equivalent of the original 5%-of-slow-engine bar to ~10% of the
        fast one; the absolute guard (about 2 ms on this workload) is
        unchanged.

        Interleaving defends against drift but not against a noise
        burst that spans one whole measurement (a few hundred ms on a
        shared 1-CPU runner), so the check retries up to three times: a
        real instrumentation regression fails every attempt, a burst
        fails at most one.
        """
        for attempt in range(3):
            ctx = make_context()
            try:
                metrics = profiler_overhead(ctx)
            finally:
                cleanup_context(ctx)
            assert metrics["baseline_s"] > 0
            if metrics["overhead_pct"] < 10.0:
                break
        assert metrics["overhead_pct"] < 10.0
