"""Integration tests for the datacenter simulation and the DC study."""

from __future__ import annotations

import pytest

from repro.cluster.arrivals import ArrivalConfig, poisson_stream
from repro.cluster.datacenter import (DatacenterSpec, RackSpec,
                                      default_job_model, run_datacenter,
                                      run_policies)
from repro.cluster.scheduler import make_policy
from repro.obs import Tracer
from repro.sim.engine import SimulationError

#: The pinned small configuration every test here shares: the inner
#: cells are memoized on the session characterizer, so the suite pays
#: for each (pool, shape) cell once.
ARRIVALS = ArrivalConfig(seed=3, n_jobs=12, jobs_per_1000s=150.0,
                         node_choices=(2, 3, 4), size_choices_gb=(0.25,))


@pytest.fixture(scope="module")
def spec():
    return DatacenterSpec.mixed(16, little_frac=0.5, rack_size=8)


@pytest.fixture(scope="module")
def stream():
    return poisson_stream(ARRIVALS)


@pytest.fixture(scope="module")
def model(characterizer):
    return default_job_model(characterizer, freq_ghz=1.8)


class TestSpec:
    def test_mixed_splits_pools(self, spec):
        assert spec.pool_sizes() == {"atom": 8, "xeon": 8}
        assert spec.total_nodes == 16

    def test_mixed_rounds_to_racks(self):
        spec = DatacenterSpec.mixed(200, little_frac=0.5, rack_size=16)
        assert spec.pool_sizes() == {"atom": 100, "xeon": 100}
        assert all(r.n_nodes <= 16 for r in spec.racks)

    def test_daemon_names_encode_rack_and_pool(self, spec):
        daemons = spec.daemons()
        assert len(daemons) == 16
        assert daemons[0].name == "r00.atom.00"
        assert all(d.name.split(".")[1] == d.machine for d in daemons)

    def test_validation(self):
        with pytest.raises(ValueError):
            DatacenterSpec(racks=())
        with pytest.raises(ValueError):
            DatacenterSpec.mixed(1)
        with pytest.raises(ValueError):
            DatacenterSpec.mixed(10, little_frac=1.5)
        with pytest.raises(ValueError):
            RackSpec("atom", 0)


class TestRunDatacenter:
    def test_every_job_completes_exactly_once(self, spec, stream, model):
        run = run_datacenter(spec, stream, make_policy("fifo"),
                             job_model=model)
        assert {o.request.job_id for o in run.outcomes} == set(range(12))
        assert run.makespan_s >= stream[-1].submit_s

    def test_leases_never_overlap_on_a_node(self, spec, stream, model):
        run = run_datacenter(spec, stream, make_policy("fair"),
                             job_model=model)
        by_node = {}
        for o in run.outcomes:
            for name in o.lease.node_names:
                by_node.setdefault(name, []).append((o.start_s, o.end_s))
        for intervals in by_node.values():
            intervals.sort()
            for (_, end_a), (start_b, _) in zip(intervals, intervals[1:]):
                assert start_b >= end_a

    def test_leases_are_homogeneous_and_sized(self, spec, stream, model):
        run = run_datacenter(spec, stream, make_policy("hetero"),
                             job_model=model)
        for o in run.outcomes:
            assert o.lease.n_nodes == o.request.nodes
            pools = {name.split(".")[1] for name in o.lease.node_names}
            assert pools == {o.lease.machine}

    def test_repeat_runs_are_identical(self, spec, stream, model):
        a = run_datacenter(spec, stream, make_policy("capacity"),
                           job_model=model)
        b = run_datacenter(spec, stream, make_policy("capacity"),
                           job_model=model)
        assert a.summary() == b.summary()
        assert a.job_records() == b.job_records()

    def test_oversized_request_rejected(self, spec, model):
        bad = poisson_stream(ArrivalConfig(
            seed=1, n_jobs=2, node_choices=(20,), size_choices_gb=(0.25,)))
        with pytest.raises(SimulationError, match="largest pool"):
            run_datacenter(spec, bad, make_policy("fifo"), job_model=model)

    def test_waits_are_never_negative(self, spec, stream, model):
        run = run_datacenter(spec, stream, make_policy("fifo"),
                             job_model=model)
        assert all(o.wait_s >= -1e-9 for o in run.outcomes)
        assert all(o.slowdown >= 1.0 - 1e-9 for o in run.outcomes)

    def test_tracer_sees_the_run(self, spec, stream, model):
        tracer = Tracer()
        run_datacenter(spec, stream, make_policy("fifo"),
                       job_model=model, obs=tracer)
        assert tracer.meta.get("dc.grants") == 12
        assert "dc.makespan_s" in tracer.meta
        names = {c.name for c in tracer.registry}
        assert {"dc.queue", "dc.busy.atom", "dc.busy.xeon"} <= names
        lease_spans = [s for s in tracer.spans
                       if s.track == ("datacenter", "atom")
                       or s.track == ("datacenter", "xeon")]
        assert len(lease_spans) == 12


class TestRunPolicies:
    def test_hetero_beats_fifo_on_cluster_edp(self, spec, stream,
                                              characterizer):
        runs = run_policies(spec, stream, ("fifo", "hetero"),
                            job_model=default_job_model(characterizer))
        assert runs["hetero"].cluster_edp < runs["fifo"].cluster_edp

    def test_summary_keys_are_uniform(self, spec, stream, model):
        runs = run_policies(spec, stream, ("fifo", "fair"), job_model=model)
        keys = [tuple(r.summary()) for r in runs.values()]
        assert keys[0] == keys[1]


class TestDatacenterStudy:
    def test_experiment_shape_and_export(self, characterizer, tmp_path):
        from repro.analysis.experiments import datacenter_study
        from repro.analysis.export import write_experiment_csv
        exp = datacenter_study(
            characterizer, seed=ARRIVALS.seed, n_nodes=16, rack_size=8,
            policies=("fifo", "hetero"), n_jobs=ARRIVALS.n_jobs,
            jobs_per_1000s=ARRIVALS.jobs_per_1000s,
            node_choices=ARRIVALS.node_choices,
            size_choices_gb=ARRIVALS.size_choices_gb)
        assert exp.exp_id == "DC"
        assert [row["policy"] for row in exp.data["summary"]] == [
            "fifo", "hetero"]
        assert len(exp.data["jobs"]) == 2 * ARRIVALS.n_jobs
        assert "normalized to FIFO" in exp.render()
        paths = {p.name for p in write_experiment_csv(exp, tmp_path)}
        assert {"DC_summary.csv", "DC_jobs.csv"} <= paths

    def test_trace_replay_matches_synthetic(self, characterizer):
        from repro.analysis.experiments import datacenter_study
        from repro.cluster.arrivals import parse_trace, trace_csv
        stream = poisson_stream(ARRIVALS)
        kwargs = dict(n_nodes=16, rack_size=8, policies=("fifo",))
        synthetic = datacenter_study(
            characterizer, seed=ARRIVALS.seed, n_jobs=ARRIVALS.n_jobs,
            jobs_per_1000s=ARRIVALS.jobs_per_1000s,
            node_choices=ARRIVALS.node_choices,
            size_choices_gb=ARRIVALS.size_choices_gb, **kwargs)
        replayed = datacenter_study(
            characterizer, stream=parse_trace(trace_csv(stream)), **kwargs)
        assert synthetic.data["summary"] == replayed.data["summary"]
        assert synthetic.data["jobs"] == replayed.data["jobs"]
