"""Cross-implementation determinism fuzz for the rewritten engine.

The calendar-queue engine in ``repro.sim.engine`` claims bit-identical
firing order to the original ``(time, seq, event)`` tuple heap.  This
module keeps that claim honest: ``_RefSimulator`` below *is* that
original design, deliberately kept simple (tuple heap, list callbacks,
no slots, no lazy-delete compaction), and the fuzz runs randomly
generated process/timeout/interrupt/cancel programs over ~20 seeds
against both engines, asserting the full ``(time, order)`` log of
observable actions and a final-state digest match exactly.

The programs are pre-generated op scripts (pure functions of the seed),
so any divergence is attributable to the engines, not to random draws
interleaving differently.
"""

from __future__ import annotations

import hashlib
import random
from heapq import heappop, heappush
from itertools import count

import pytest

from repro.sim.engine import Interrupt, SimulationError, Simulator

# -- the kept-simple reference engine ------------------------------------


class _RefEvent:
    def __init__(self, sim):
        self.sim = sim
        self.callbacks = []
        self.triggered = False
        self.processed = False
        self.value = None
        self.exc = None
        self.cancelled = False

    def succeed(self, value=None):
        if self.triggered:
            raise SimulationError("event already triggered")
        if self.cancelled:
            raise SimulationError("cannot succeed a cancelled event")
        self.triggered = True
        self.value = value
        self.sim._schedule(self, 0.0)
        return self

    def fail(self, exc):
        if self.triggered:
            raise SimulationError("event already triggered")
        if self.cancelled:
            raise SimulationError("cannot fail a cancelled event")
        self.triggered = True
        self.exc = exc
        self.sim._schedule(self, 0.0)
        return self

    def cancel(self):
        if self.processed:
            return
        self.cancelled = True

    def add_callback(self, cb):
        if self.processed:
            cb(self)
        else:
            self.callbacks.append(cb)


class _RefProcess(_RefEvent):
    def __init__(self, sim, gen):
        super().__init__(sim)
        self.gen = gen
        self.waiting = None
        boot = _RefEvent(sim)
        boot.triggered = True
        boot.callbacks.append(self._resume)
        sim._schedule(boot, 0.0)

    @property
    def is_alive(self):
        return not self.triggered

    def _resume(self, event):
        if self.triggered:
            return
        if self.waiting is not None and event is not self.waiting:
            return
        try:
            if event.exc is not None:
                target = self.gen.throw(event.exc)
            else:
                target = self.gen.send(event.value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            if self.callbacks:
                self.fail(exc)
                return
            raise
        self.waiting = target
        target.add_callback(self._resume)

    def interrupt(self, cause=None):
        if not self.is_alive:
            return
        intr = _RefEvent(self.sim)
        self.waiting = intr
        intr.callbacks.append(self._resume)
        intr.fail(Interrupt(cause))


class _RefSimulator:
    """The original engine design: one (time, seq, event) tuple per entry."""

    def __init__(self):
        self.now = 0.0
        self.event_count = 0
        self._heap = []
        self._seq = count()

    def _schedule(self, event, delay):
        heappush(self._heap, (self.now + delay, next(self._seq), event))

    def event(self):
        return _RefEvent(self)

    def timeout(self, delay, value=None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        ev = _RefEvent(self)
        ev.triggered = True
        ev.value = value
        self._schedule(ev, delay)
        return ev

    def process(self, gen):
        return _RefProcess(self, gen)

    def any_of(self, events):
        events = list(events)
        out = _RefEvent(self)

        def make(index):
            def cb(ev):
                if out.triggered:
                    return
                if ev.exc is not None:
                    out.fail(ev.exc)
                else:
                    out.succeed((index, ev.value))
            return cb

        for index, ev in enumerate(events):
            ev.add_callback(make(index))
        return out

    def all_of(self, events):
        events = list(events)
        out = _RefEvent(self)
        state = {"pending": len(events), "values": [None] * len(events)}

        def make(index):
            def cb(ev):
                if out.triggered:
                    return
                if ev.exc is not None:
                    out.fail(ev.exc)
                    return
                state["values"][index] = ev.value
                state["pending"] -= 1
                if state["pending"] == 0:
                    out.succeed(list(state["values"]))
            return cb

        for index, ev in enumerate(events):
            ev.add_callback(make(index))
        return out

    def run(self, until=None):
        heap = self._heap
        while heap:
            when = heap[0][0]
            if until is not None and when > until:
                self.now = until
                return self.now
            _, _, ev = heappop(heap)
            if ev.cancelled:
                continue
            self.now = when
            ev.processed = True
            cbs = ev.callbacks
            ev.callbacks = []
            for cb in cbs:
                cb(ev)
            self.event_count += 1
        return self.now


# -- random program generation -------------------------------------------

_DELAYS = [0.0, 0.25, 0.25, 0.5, 0.75, 1.0, 1.0, 1.5, 2.0, 3.0]


def _random_script(rng: random.Random, n_procs: int):
    """One process's op list — a pure function of the rng state."""
    ops = []
    for _ in range(rng.randrange(2, 7)):
        roll = rng.random()
        if roll < 0.35:
            ops.append(("timeout", rng.choice(_DELAYS)))
        elif roll < 0.50:
            ops.append(("cancel", rng.choice(_DELAYS), rng.choice(_DELAYS)))
        elif roll < 0.65:
            ops.append(("anyof", tuple(rng.choice(_DELAYS)
                                       for _ in range(rng.randrange(2, 4)))))
        elif roll < 0.75:
            ops.append(("allof", tuple(rng.choice(_DELAYS)
                                       for _ in range(rng.randrange(2, 4)))))
        elif roll < 0.90:
            ops.append(("interrupt", rng.choice(_DELAYS),
                        rng.randrange(n_procs)))
        else:
            ops.append(("succeed", rng.choice(_DELAYS), rng.randrange(100)))
    return ops


def _make_program(script, sim, pid, log, registry):
    """Instantiate one op script against either engine implementation."""
    def prog():
        for step, op in enumerate(script):
            kind = op[0]
            try:
                if kind == "timeout":
                    yield sim.timeout(op[1])
                    log.append((sim.now, pid, step, "timeout"))
                elif kind == "cancel":
                    victim = sim.timeout(op[1])
                    yield sim.timeout(op[2])
                    victim.cancel()
                    log.append((sim.now, pid, step, "cancel",
                                victim.processed))
                elif kind == "anyof":
                    got = yield sim.any_of(
                        [sim.timeout(d) for d in op[1]])
                    log.append((sim.now, pid, step, "anyof", got))
                elif kind == "allof":
                    got = yield sim.all_of(
                        [sim.timeout(d, value=i)
                         for i, d in enumerate(op[1])])
                    log.append((sim.now, pid, step, "allof", tuple(got)))
                elif kind == "interrupt":
                    yield sim.timeout(op[1])
                    target = registry[op[2] % len(registry)]
                    target.interrupt((pid, step))
                    log.append((sim.now, pid, step, "sent-interrupt",
                                target.is_alive))
                elif kind == "succeed":
                    box = sim.event()

                    def helper(box=box, delay=op[1], val=op[2]):
                        yield sim.timeout(delay)
                        if not box.triggered and not box.cancelled:
                            box.succeed(val)

                    sim.process(helper())
                    got = yield box
                    log.append((sim.now, pid, step, "succeed", got))
            except Interrupt as intr:
                log.append((sim.now, pid, step, "interrupted",
                            repr(intr.cause)))
    return prog()


def _run_seed(seed: int, sim_factory):
    """Build and run one seeded random simulation; return (log, digest)."""
    rng = random.Random(seed)
    n_procs = rng.randrange(3, 9)
    scripts = [_random_script(rng, n_procs) for _ in range(n_procs)]
    sim = sim_factory()
    log = []
    registry = []
    for pid, script in enumerate(scripts):
        registry.append(sim.process(
            _make_program(script, sim, pid, log, registry)))
    sim.run()
    state = (tuple(log), sim.now, sim.event_count)
    digest = hashlib.sha256(repr(state).encode()).hexdigest()
    return log, digest


@pytest.mark.parametrize("seed", range(20))
def test_engine_matches_reference_loop(seed):
    """Full firing order and final-state digest match the tuple heap."""
    ref_log, ref_digest = _run_seed(seed, _RefSimulator)
    new_log, new_digest = _run_seed(seed, Simulator)
    assert new_log == ref_log
    assert new_digest == ref_digest


def test_fuzz_programs_actually_exercise_the_engine():
    """Sanity: the generated programs are not trivially empty."""
    total_entries = 0
    kinds = set()
    for seed in range(20):
        log, _ = _run_seed(seed, Simulator)
        total_entries += len(log)
        kinds.update(entry[3] for entry in log)
    assert total_entries > 100
    assert {"timeout", "cancel", "anyof", "allof",
            "sent-interrupt"} <= kinds
