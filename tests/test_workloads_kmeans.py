"""Tests for the K-Means extension workload."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.characterization import RunKey
from repro.core.metrics import edp
from repro.workloads.base import workload
from repro.workloads.kmeans import (KMEANS_ITERATIONS, assign_cluster,
                                    generate_points, kmeans_fit,
                                    kmeans_iteration_job)


class TestGeneratePoints:
    def test_shape(self):
        points, centres = generate_points(120, n_clusters=3, dims=2)
        assert len(points) == 120
        assert len(centres) == 3
        assert all(len(p) == 2 for p in points)

    def test_deterministic(self):
        assert generate_points(50, seed=1) == generate_points(50, seed=1)

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_points(-1)
        with pytest.raises(ValueError):
            generate_points(10, n_clusters=0)


class TestAssignCluster:
    def test_nearest_wins(self):
        centroids = [(0.0, 0.0), (10.0, 10.0)]
        assert assign_cluster((1.0, 1.0), centroids) == 0
        assert assign_cluster((9.0, 9.0), centroids) == 1

    def test_no_centroids_rejected(self):
        with pytest.raises(ValueError):
            assign_cluster((0.0,), [])

    @given(st.lists(st.tuples(st.floats(-100, 100), st.floats(-100, 100)),
                    min_size=1, max_size=8),
           st.tuples(st.floats(-100, 100), st.floats(-100, 100)))
    @settings(max_examples=40)
    def test_assignment_is_argmin(self, centroids, point):
        chosen = assign_cluster(point, centroids)
        d_chosen = sum((a - b) ** 2 for a, b in zip(point, centroids[chosen]))
        for c in centroids:
            d = sum((a - b) ** 2 for a, b in zip(point, c))
            assert d_chosen <= d + 1e-9


class TestLloydViaMapReduce:
    def test_recovers_planted_centres(self):
        points, truth = generate_points(240, n_clusters=3, spread=0.3,
                                        seed=5)
        centroids, iterations = kmeans_fit(points, 3, seed=7)
        assert iterations >= 1
        # Every true centre has a recovered centroid within a tight radius.
        for centre in truth:
            best = min(math.dist(centre, c) for c in centroids)
            assert best < 1.5

    def test_single_iteration_moves_toward_means(self):
        from repro.mapreduce.functional import LocalRuntime
        points = [(0.0, 0.0), (0.2, 0.0), (10.0, 10.0), (10.2, 10.0)]
        records = [(i, p) for i, p in enumerate(points)]
        job = kmeans_iteration_job([(1.0, 1.0), (9.0, 9.0)])
        output, _ = LocalRuntime(num_mappers=1).run(job, records)
        result = dict(output)
        assert result[0] == pytest.approx((0.1, 0.0))
        assert result[1] == pytest.approx((10.1, 10.0))

    def test_validation(self):
        with pytest.raises(ValueError):
            kmeans_fit([], 2)
        with pytest.raises(ValueError):
            kmeans_fit([(0.0, 0.0)], 0)

    def test_convergence_is_stable(self):
        points, _ = generate_points(150, n_clusters=2, spread=0.2, seed=9)
        c1, _ = kmeans_fit(points, 2, seed=11)
        # Re-running one more iteration from the fixpoint changes nothing.
        c2, iters = kmeans_fit(points, 2, seed=11)
        assert c1 == c2


class TestPerformanceSpec:
    def test_registered_as_extension(self):
        spec = workload("kmeans")
        assert "extension" in spec.full_name
        assert len(spec.stages) == KMEANS_ITERATIONS

    def test_each_iteration_scans_original_input(self):
        spec = workload("kmeans")
        assert all(s.input_source == "original" for s in spec.stages)

    def test_little_core_friendly(self, characterizer):
        """KM is the most compute-dense app: Atom's EDP advantage should
        be at least as strong as WordCount's."""
        km_atom = characterizer.run(RunKey("atom", "kmeans"))
        km_xeon = characterizer.run(RunKey("xeon", "kmeans"))
        km_ratio = (edp(km_atom.dynamic_energy_j, km_atom.execution_time_s)
                    / edp(km_xeon.dynamic_energy_j,
                          km_xeon.execution_time_s))
        assert km_ratio < 1.0

    def test_iterations_visible_in_stage_timings(self, characterizer):
        r = characterizer.run(RunKey("xeon", "kmeans"))
        assert len(r.stages) == KMEANS_ITERATIONS
        assert all(t.map_s > 0 for t in r.stages)
