"""Unit and property tests for the interval trace recorder."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.sim.trace import (Interval, TraceRecorder, complement,
                             merge_intervals, total_overlap)

spans = st.tuples(st.floats(min_value=0, max_value=1000),
                  st.floats(min_value=0, max_value=1000)).map(
                      lambda t: (min(t), max(t)))


def _iv(start, end, node="n0", device="core", kind="work", activity=1.0,
        phase="map"):
    return Interval(start, end, node, device, kind, activity, None, phase)


class TestInterval:
    def test_duration(self):
        assert _iv(1.0, 3.5).duration == pytest.approx(2.5)

    def test_backwards_interval_rejected(self):
        with pytest.raises(ValueError):
            _iv(5.0, 1.0)

    def test_activity_range_enforced(self):
        with pytest.raises(ValueError):
            _iv(0, 1, activity=1.5)
        with pytest.raises(ValueError):
            _iv(0, 1, activity=-0.1)

    def test_zero_length_allowed(self):
        assert _iv(2.0, 2.0).duration == 0.0


class TestTraceRecorder:
    def _populated(self):
        tr = TraceRecorder()
        tr.record(_iv(0, 2, node="a", device="core", phase="map"))
        tr.record(_iv(1, 4, node="a", device="disk", phase="map"))
        tr.record(_iv(3, 6, node="b", device="core", phase="reduce"))
        return tr

    def test_len_and_iter(self):
        tr = self._populated()
        assert len(tr) == 3
        assert len(list(tr)) == 3

    def test_filter_by_node(self):
        tr = self._populated()
        assert len(tr.filter(node="a")) == 2

    def test_filter_by_device_and_phase(self):
        tr = self._populated()
        assert len(tr.filter(device="core", phase="reduce")) == 1

    def test_filter_kind_prefix(self):
        tr = TraceRecorder()
        tr.add(0, 1, "n", "core", "map.compute")
        tr.add(1, 2, "n", "core", "map.sort")
        tr.add(2, 3, "n", "core", "reduce.user")
        assert len(tr.filter(kind="map")) == 2

    def test_span(self):
        tr = self._populated()
        assert tr.span() == (0.0, 6.0)

    def test_empty_span(self):
        assert TraceRecorder().span() == (0.0, 0.0)

    def test_busy_time_double_counts_overlap(self):
        tr = self._populated()
        assert tr.busy_time(node="a") == pytest.approx(5.0)

    def test_weighted_busy_time(self):
        tr = TraceRecorder()
        tr.add(0, 10, "n", "core", "w", activity=0.25)
        assert tr.weighted_busy_time() == pytest.approx(2.5)

    def test_phase_window_coalesces(self):
        tr = self._populated()
        assert tr.phase_window("map") == (0.0, 4.0)
        assert tr.phase_duration("reduce") == pytest.approx(3.0)

    def test_marks(self):
        tr = TraceRecorder()
        tr.mark(1.5, "job submitted")
        assert tr.marks == [(1.5, "job submitted")]


class TestMergeIntervals:
    def test_disjoint_preserved(self):
        assert merge_intervals([(0, 1), (2, 3)]) == [(0, 1), (2, 3)]

    def test_overlap_coalesced(self):
        assert merge_intervals([(0, 2), (1, 3)]) == [(0, 3)]

    def test_touching_coalesced(self):
        assert merge_intervals([(0, 1), (1, 2)]) == [(0, 2)]

    def test_empty_spans_dropped(self):
        assert merge_intervals([(1, 1), (2, 2)]) == []

    def test_zero_length_inside_span_dropped(self):
        assert merge_intervals([(0, 3), (1, 1)]) == [(0, 3)]

    def test_touching_after_merge_coalesced(self):
        # (0,1) and (1,2) only become adjacent once sorted.
        assert merge_intervals([(1, 2), (0, 1), (2, 2)]) == [(0, 2)]

    def test_backwards_span_raises(self):
        # Silently dropping a backwards span hid accounting bugs; it is
        # now a hard error.
        with pytest.raises(ValueError, match="backwards span"):
            merge_intervals([(5.0, 1.0)])

    def test_unsorted_input(self):
        assert merge_intervals([(5, 6), (0, 1), (0.5, 5.5)]) == [(0, 6)]

    @given(st.lists(spans, max_size=30))
    def test_output_is_disjoint_and_sorted(self, intervals):
        merged = merge_intervals(intervals)
        for (s1, e1), (s2, e2) in zip(merged, merged[1:]):
            assert e1 < s2
        for s, e in merged:
            assert s < e

    @given(st.lists(spans, max_size=30))
    def test_merge_is_idempotent(self, intervals):
        once = merge_intervals(intervals)
        assert merge_intervals(once) == once

    @given(st.lists(spans, max_size=30))
    def test_overlap_bounded_by_sum(self, intervals):
        covered = total_overlap(intervals)
        raw = sum(e - s for s, e in intervals)
        assert covered <= raw + 1e-9

    @given(st.lists(spans, max_size=30))
    def test_overlap_covers_each_span(self, intervals):
        covered = total_overlap(intervals)
        longest = max((e - s for s, e in intervals), default=0.0)
        assert covered >= longest - 1e-9


class TestComplement:
    def test_empty_spans_give_whole_window(self):
        assert complement([], 0.0, 10.0) == [(0.0, 10.0)]

    def test_gaps_between_spans(self):
        assert complement([(1, 2), (4, 6)], 0.0, 10.0) == \
            [(0.0, 1), (2, 4), (6, 10.0)]

    def test_full_coverage_gives_nothing(self):
        assert complement([(0, 5), (5, 10)], 0.0, 10.0) == []

    def test_spans_outside_window_clipped(self):
        assert complement([(-5, 1), (9, 20)], 0.0, 10.0) == [(1, 9)]

    def test_zero_length_spans_ignored(self):
        assert complement([(3, 3)], 0.0, 10.0) == [(0.0, 10.0)]

    def test_backwards_span_raises(self):
        with pytest.raises(ValueError):
            complement([(5.0, 1.0)], 0.0, 10.0)

    def test_backwards_window_raises(self):
        with pytest.raises(ValueError, match="empty window"):
            complement([], 5.0, 1.0)

    @given(st.lists(spans, max_size=30))
    def test_partitions_window_with_merge(self, intervals):
        lo, hi = 0.0, 1000.0
        gaps = complement(intervals, lo, hi)
        merged = merge_intervals(intervals)
        clipped = sum(min(e, hi) - max(s, lo)
                      for s, e in merged if e > lo and s < hi)
        assert sum(e - s for s, e in gaps) + clipped == \
            pytest.approx(hi - lo)
        for (s1, e1), (s2, e2) in zip(gaps, gaps[1:]):
            assert e1 <= s2
