"""Unit tests for the discrete-event simulation kernel."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.sim.engine import (AllOf, AnyOf, Event, Interrupt, Process,
                              SimulationError, Simulator, Timeout)


class TestEvent:
    def test_starts_untriggered(self):
        sim = Simulator()
        ev = sim.event()
        assert not ev.triggered
        assert not ev.processed

    def test_succeed_delivers_value(self):
        sim = Simulator()
        ev = sim.event()
        seen = []
        ev.add_callback(lambda e: seen.append(e.value))
        ev.succeed(42)
        sim.run()
        assert seen == [42]

    def test_double_trigger_rejected(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_callback_after_processing_runs_immediately(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed("x")
        sim.run()
        seen = []
        ev.add_callback(lambda e: seen.append(e.value))
        assert seen == ["x"]

    def test_fail_carries_exception(self):
        sim = Simulator()
        ev = sim.event()
        err = RuntimeError("boom")
        ev.fail(err)
        sim.run()
        assert ev.triggered
        assert not ev.ok


class TestTimeout:
    def test_fires_at_delay(self):
        sim = Simulator()
        times = []

        def proc(sim):
            yield sim.timeout(2.5)
            times.append(sim.now)

        sim.process(proc(sim))
        sim.run()
        assert times == [2.5]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.timeout(-1.0)

    def test_zero_delay_allowed(self):
        sim = Simulator()
        done = []

        def proc(sim):
            yield sim.timeout(0.0)
            done.append(sim.now)

        sim.process(proc(sim))
        sim.run()
        assert done == [0.0]

    def test_timeout_value_passed_through(self):
        sim = Simulator()
        got = []

        def proc(sim):
            value = yield sim.timeout(1.0, value="payload")
            got.append(value)

        sim.process(proc(sim))
        sim.run()
        assert got == ["payload"]


class TestProcess:
    def test_return_value_becomes_event_value(self):
        sim = Simulator()

        def child(sim):
            yield sim.timeout(1)
            return "done"

        def parent(sim, out):
            result = yield sim.process(child(sim))
            out.append(result)

        out = []
        sim.process(parent(sim, out))
        sim.run()
        assert out == ["done"]

    def test_sequential_timeouts_accumulate(self):
        sim = Simulator()

        def proc(sim):
            yield sim.timeout(1)
            yield sim.timeout(2)
            yield sim.timeout(3)

        sim.process(proc(sim))
        assert sim.run() == 6.0

    def test_non_generator_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.process(lambda: None)

    def test_yielding_non_event_raises(self):
        sim = Simulator()

        def bad(sim):
            yield 42

        sim.process(bad(sim))
        with pytest.raises(SimulationError):
            sim.run()

    def test_cross_simulator_event_rejected(self):
        sim1, sim2 = Simulator(), Simulator()

        def proc(sim, other):
            yield other.timeout(1)

        sim1.process(proc(sim1, sim2))
        with pytest.raises(SimulationError):
            sim1.run()

    def test_crash_propagates_to_waiter(self):
        sim = Simulator()

        def child(sim):
            yield sim.timeout(1)
            raise ValueError("inner")

        def parent(sim, out):
            try:
                yield sim.process(child(sim))
            except ValueError as exc:
                out.append(str(exc))

        out = []
        sim.process(parent(sim, out))
        sim.run()
        assert out == ["inner"]

    def test_unwaited_crash_raises(self):
        sim = Simulator()

        def bad(sim):
            yield sim.timeout(1)
            raise ValueError("unobserved")

        sim.process(bad(sim))
        with pytest.raises(ValueError, match="unobserved"):
            sim.run()

    def test_interrupt_mid_wait(self):
        sim = Simulator()
        out = []

        def sleeper(sim):
            try:
                yield sim.timeout(100)
            except Interrupt as intr:
                out.append((sim.now, intr.cause))

        proc = sim.process(sleeper(sim))

        def interrupter(sim, target):
            yield sim.timeout(3)
            target.interrupt("wakeup")

        sim.process(interrupter(sim, proc))
        sim.run()
        assert out == [(3.0, "wakeup")]

    def test_is_alive_lifecycle(self):
        sim = Simulator()

        def proc(sim):
            yield sim.timeout(5)

        p = sim.process(proc(sim))
        assert p.is_alive
        sim.run()
        assert not p.is_alive


class TestCombinators:
    def test_all_of_waits_for_slowest(self):
        sim = Simulator()
        out = []

        def proc(sim):
            values = yield sim.all_of([sim.timeout(1, value="a"),
                                       sim.timeout(5, value="b"),
                                       sim.timeout(3, value="c")])
            out.append((sim.now, values))

        sim.process(proc(sim))
        sim.run()
        assert out == [(5.0, ["a", "b", "c"])]

    def test_all_of_empty_fires_immediately(self):
        sim = Simulator()
        out = []

        def proc(sim):
            values = yield sim.all_of([])
            out.append((sim.now, values))

        sim.process(proc(sim))
        sim.run()
        assert out == [(0.0, [])]

    def test_any_of_fires_on_first(self):
        sim = Simulator()
        out = []

        def proc(sim):
            index, value = yield sim.any_of([sim.timeout(4, value="slow"),
                                             sim.timeout(1, value="fast")])
            out.append((sim.now, index, value))

        sim.process(proc(sim))
        sim.run()
        assert out == [(1.0, 1, "fast")]

    def test_any_of_empty_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.any_of([])


class TestCancellation:
    def test_cancelled_timeout_does_not_advance_clock(self):
        sim = Simulator()
        t = sim.timeout(100.0)

        def proc(sim):
            yield sim.timeout(2.0)

        sim.process(proc(sim))
        t.cancel()
        assert sim.run() == 2.0  # the cancelled 100s never fired

    def test_cancel_after_processing_is_noop(self):
        sim = Simulator()
        t = sim.timeout(1.0)
        sim.run()
        t.cancel()
        assert t.processed
        assert not t.cancelled

    def test_step_skips_cancelled_events(self):
        sim = Simulator()
        t1 = sim.timeout(1.0)
        sim.timeout(2.0)
        t1.cancel()
        assert sim.step()
        assert sim.now == 2.0


class TestFailurePaths:
    def test_interrupt_during_timeout_ignores_stale_firing(self):
        sim = Simulator()
        out = []

        def sleeper(sim):
            try:
                yield sim.timeout(100)
            except Interrupt:
                yield sim.timeout(1)
                out.append(sim.now)

        proc = sim.process(sleeper(sim))

        def interrupter(sim, target):
            yield sim.timeout(3)
            target.interrupt()

        sim.process(interrupter(sim, proc))
        sim.run()
        # Resumed exactly once after the interrupt; the abandoned 100s
        # timeout fires into the stale-wakeup guard and is dropped.
        assert out == [4.0]

    def test_any_of_with_failing_child_propagates(self):
        sim = Simulator()
        out = []

        def failing(sim):
            yield sim.timeout(1)
            raise ValueError("child died")

        def waiter(sim):
            try:
                yield sim.any_of([sim.process(failing(sim)),
                                  sim.timeout(50)])
            except ValueError as exc:
                out.append((sim.now, str(exc)))

        sim.process(waiter(sim))
        sim.run()
        assert out == [(1.0, "child died")]

    def test_crash_propagates_to_every_waiter(self):
        sim = Simulator()
        out = []

        def failing(sim):
            yield sim.timeout(1)
            raise ValueError("boom")

        def waiter(sim, tag, target):
            try:
                yield target
            except ValueError:
                out.append(tag)

        target = sim.process(failing(sim))
        sim.process(waiter(sim, "a", target))
        sim.process(waiter(sim, "b", target))
        sim.run()
        assert sorted(out) == ["a", "b"]

    def test_watched_process_stores_failure(self):
        sim = Simulator()

        def failing(sim):
            yield sim.timeout(1)
            raise ValueError("stored")

        proc = sim.process(failing(sim))
        proc.add_callback(lambda e: None)
        sim.run()  # does not raise: the failure is stored, not re-raised
        assert not proc.ok
        assert isinstance(proc.exception, ValueError)

    def test_interrupting_finished_process_is_noop(self):
        sim = Simulator()

        def proc(sim):
            yield sim.timeout(1)

        p = sim.process(proc(sim))
        sim.run()
        p.interrupt()  # must not schedule anything
        assert sim.pending == 0


class TestSimulator:
    def test_run_until_stops_clock(self):
        sim = Simulator()

        def proc(sim):
            yield sim.timeout(10)

        sim.process(proc(sim))
        assert sim.run(until=4.0) == 4.0
        assert sim.pending > 0
        assert sim.run() == 10.0

    def test_step_processes_single_event(self):
        sim = Simulator()
        sim.timeout(1)
        sim.timeout(2)
        # Timeouts schedule themselves; two pending firings exist.
        assert sim.step()
        assert sim.now == 1.0
        assert sim.step()
        assert sim.now == 2.0
        assert not sim.step()

    def test_fifo_among_simultaneous_events(self):
        sim = Simulator()
        order = []

        def proc(sim, tag):
            yield sim.timeout(1.0)
            order.append(tag)

        for tag in ("first", "second", "third"):
            sim.process(proc(sim, tag))
        sim.run()
        assert order == ["first", "second", "third"]

    @given(st.lists(st.floats(min_value=0.001, max_value=1000.0),
                    min_size=1, max_size=30))
    def test_events_fire_in_time_order(self, delays):
        sim = Simulator()
        fired = []

        def proc(sim, d):
            yield sim.timeout(d)
            fired.append(sim.now)

        for d in delays:
            sim.process(proc(sim, d))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(st.lists(st.floats(min_value=0.01, max_value=100.0),
                    min_size=1, max_size=20))
    def test_determinism_across_runs(self, delays):
        def execute():
            sim = Simulator()
            log = []

            def proc(sim, i, d):
                yield sim.timeout(d)
                log.append((i, sim.now))

            for i, d in enumerate(delays):
                sim.process(proc(sim, i, d))
            sim.run()
            return log

        assert execute() == execute()


class TestEngineCampaignEdges:
    """Regression tests for the hot-path campaign's satellite bugfixes."""

    def test_succeed_after_cancel_raises(self):
        # The old engine scheduled the event and then silently skipped it
        # as cancelled, stranding every waiter; now it raises loudly.
        sim = Simulator()
        ev = sim.event()
        ev.cancel()
        with pytest.raises(SimulationError, match="cancelled"):
            ev.succeed(42)

    def test_fail_after_cancel_raises(self):
        sim = Simulator()
        ev = sim.event()
        ev.cancel()
        with pytest.raises(SimulationError, match="cancelled"):
            ev.fail(RuntimeError("boom"))

    def test_process_finishing_after_cancel_raises(self):
        # A Process is an event too: cancelling it and then letting the
        # generator finish hits the same inlined succeed path.
        sim = Simulator()

        def proc(sim):
            yield sim.timeout(1.0)

        p = sim.process(proc(sim))
        p.cancel()
        with pytest.raises(SimulationError, match="cancelled"):
            sim.run()

    def test_interrupt_during_anyof(self):
        sim = Simulator()
        log = []

        def waiter(sim):
            try:
                yield sim.any_of([sim.timeout(5.0), sim.timeout(9.0)])
                log.append(("fired", sim.now))
            except Interrupt as intr:
                log.append(("interrupted", intr.cause, sim.now))
            yield sim.timeout(1.0)
            log.append(("moved-on", sim.now))

        def bolt(sim, target):
            yield sim.timeout(2.0)
            target.interrupt("storm")

        target = sim.process(waiter(sim))
        sim.process(bolt(sim, target))
        sim.run()
        # The AnyOf children still fire at t=5/9 but the stale-wakeup
        # guard must ignore them; the waiter resumed exactly once.
        assert log == [("interrupted", "storm", 2.0), ("moved-on", 3.0)]

    def test_pending_excludes_lazily_deleted_cancellations(self):
        sim = Simulator()
        live = sim.timeout(1.0)
        doomed = [sim.timeout(2.0) for _ in range(10)]
        assert sim.pending == 11
        for t in doomed:
            t.cancel()
        # The cancelled events still sit in their calendar bucket, but
        # backlog metrics must see only the live one.
        assert sim.pending == 1
        assert not live.processed

    def test_compaction_sweeps_cancelled_events(self):
        from repro.sim.engine import COMPACT_THRESHOLD
        sim = Simulator()
        sim.timeout(0.5)                          # one live sentinel
        doomed = [sim.timeout(1.0 + i) for i in range(COMPACT_THRESHOLD + 50)]
        entries_before = sim._queue_entries()
        for t in doomed:
            t.cancel()
        # The sweep fired at the threshold: retired entries physically
        # left the calendar instead of waiting for dispatch to skip them.
        assert sim._queue_entries() < entries_before
        assert sim._cancelled_pending < len(doomed)
        assert sim.pending == 1
        assert sim.run() == 0.5   # cancelled events never advance now

    def test_step_respects_until_bound(self):
        sim = Simulator()
        sim.timeout(1.0)
        assert not sim.step(until=0.5)   # next event beyond the bound
        assert sim.now == 0.5
        assert sim.step()                # without a bound it fires
        assert sim.now == 1.0

    def test_step_tallies_cancel_skips_like_run(self):
        from repro.obs import prof
        sim = Simulator()
        doomed = sim.timeout(1.0)
        sim.timeout(2.0)
        doomed.cancel()
        with prof.profiled() as profiler:
            assert sim.step()
        assert sim.now == 2.0
        assert profiler.meta.get("engine.cancel_skips") == 1
        assert profiler.meta.get("engine.events") == 1
