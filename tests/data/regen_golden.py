"""Regenerate the golden Perfetto trace used by test_obs_export.py.

Run after an *intentional* change to the model or the exporter:

    PYTHONPATH=src python tests/data/regen_golden.py

and commit the refreshed JSON together with the change that moved it.
"""

from pathlib import Path

from repro.mapreduce.driver import simulate_job
from repro.obs import Tracer, perfetto_json, verify_job

out = Path(__file__).parent / "wordcount_small_trace.json"
tracer = Tracer()
simulate_job("atom", "wordcount", data_per_node_gb=0.0625, obs=tracer)
verify_job(tracer.job)
out.write_text(perfetto_json(tracer), encoding="utf-8", newline="\n")
print(f"wrote {out} ({out.stat().st_size} bytes)")
