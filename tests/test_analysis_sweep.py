"""Unit tests for the sweep harness and table rendering."""

from __future__ import annotations

import pytest

from repro.analysis.sweep import sweep
from repro.analysis.tables import eng, format_grid, format_series, format_table


class TestSweep:
    @pytest.fixture(scope="class")
    def result(self, characterizer):
        return sweep(characterizer,
                     machine=["atom", "xeon"],
                     workload=["wordcount"],
                     freq_ghz=[1.2, 1.8])

    def test_cross_product_size(self, result):
        assert len(result) == 4

    def test_get_by_coordinates(self, result):
        r = result.get(machine="atom", workload="wordcount", freq_ghz=1.8)
        assert r.machine == "atom"
        assert r.freq_ghz == pytest.approx(1.8)

    def test_get_missing_cell(self, result):
        with pytest.raises(KeyError):
            result.get(machine="atom", workload="wordcount", freq_ghz=1.5)

    def test_series_extraction(self, result):
        series = result.series("freq_ghz",
                               lambda r: r.execution_time_s,
                               machine="atom", workload="wordcount")
        assert [x for x, _y in series] == [1.2, 1.8]
        assert series[0][1] > series[1][1]  # slower at lower frequency

    def test_series_unknown_axis(self, result):
        with pytest.raises(KeyError):
            result.series("voltage", lambda r: 0.0)

    def test_unknown_axis_rejected(self, characterizer):
        with pytest.raises(KeyError):
            sweep(characterizer, machine=["atom"], overclock=[2.0])

    def test_sweep_uses_shared_cache(self, characterizer):
        before = len(characterizer)
        sweep(characterizer, machine=["atom"], workload=["wordcount"],
              freq_ghz=[1.2, 1.8])
        sweep(characterizer, machine=["atom"], workload=["wordcount"],
              freq_ghz=[1.2, 1.8])
        after = len(characterizer)
        assert after <= before + 2  # second sweep fully cached


class TestTables:
    def test_eng_format(self):
        assert eng(0.0) == "0"
        assert eng(1234.0) == "1.23e+03" or "1.23" in eng(1234.0)
        assert "E" in eng(4.2e7)

    def test_format_table_alignment(self):
        text = format_table(["name", "v"], [["a", 1.0], ["bbbb", 22.5]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(l) for l in lines[1:])) <= 2

    def test_format_table_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_format_table_title(self):
        text = format_table(["h"], [["x"]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_format_series(self):
        text = format_series("s", ["a", "b"], [1.0, 2.0])
        assert "a:1" in text and "b:2" in text

    def test_format_series_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series("s", ["a"], [1.0, 2.0])

    def test_format_grid(self):
        text = format_grid("G", ["r1"], ["c1", "c2"],
                           {("r1", "c1"): 1.0, ("r1", "c2"): 2.0})
        assert "r1" in text and "c1" in text
