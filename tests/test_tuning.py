"""Tests for the configuration tuning advisor (extension)."""

from __future__ import annotations

import pytest

from repro.arch.dvfs import PAPER_FREQUENCIES_GHZ
from repro.core.tuning import TuningAdvisor, TuningPoint


@pytest.fixture(scope="module")
def advisor(characterizer):
    # Micro grid keeps the module fast; full grids are exercised in
    # benchmarks via the figure drivers.
    return TuningAdvisor(characterizer, freqs_ghz=(1.2, 1.8),
                         blocks_mb=(64.0, 256.0))


class TestTuningPoint:
    def test_metric_family(self):
        p = TuningPoint(1.8, 64.0, 8, execution_time_s=10.0, energy_j=5.0)
        assert p.metric("ENERGY") == pytest.approx(5.0)
        assert p.metric("EDP") == pytest.approx(50.0)
        assert p.metric("ED2P") == pytest.approx(500.0)
        assert p.edp == p.metric("EDP")

    def test_unknown_goal(self):
        p = TuningPoint(1.8, 64.0, 8, 10.0, 5.0)
        with pytest.raises(KeyError):
            p.metric("FLOPS")


class TestEvaluate:
    def test_grid_size(self, advisor):
        points = advisor.evaluate("wordcount", "atom")
        assert len(points) == 4  # 2 freqs x 2 blocks

    def test_points_are_physical(self, advisor):
        for p in advisor.evaluate("grep", "xeon"):
            assert p.execution_time_s > 0
            assert p.energy_j > 0


class TestRecommend:
    def test_best_no_worse_than_default(self, advisor):
        for machine in ("atom", "xeon"):
            rec = advisor.recommend("wordcount", machine, goal="EDP")
            assert rec.improvement >= 1.0
            assert rec.goal == "EDP"

    def test_tuned_block_beats_default(self, advisor):
        """WC's EDP optimum is not the 64 MB default (§3.1.1)."""
        rec = advisor.recommend("wordcount", "atom", goal="EDP")
        assert rec.best.block_size_mb == 256.0

    def test_deadline_constrains_choice(self, advisor):
        loose = advisor.recommend("wordcount", "atom", goal="ENERGY")
        tight = advisor.recommend(
            "wordcount", "atom", goal="ENERGY",
            deadline_s=loose.default.execution_time_s * 1.01)
        assert tight.feasible
        assert (tight.best.execution_time_s
                <= loose.default.execution_time_s * 1.01)

    def test_impossible_deadline_flagged(self, advisor):
        rec = advisor.recommend("wordcount", "atom", deadline_s=0.001)
        assert not rec.feasible

    def test_frequency_relief_direction(self, characterizer):
        """Tuning the block size lets the core run below max frequency
        while matching the default's performance (§3.1.1).  Needs the
        full frequency grid to find the intermediate setpoint."""
        full = TuningAdvisor(characterizer)
        relief = full.frequency_relief("wordcount", "atom")
        assert relief < max(PAPER_FREQUENCIES_GHZ)

    def test_relief_bounded_by_sweep(self, advisor):
        relief = advisor.frequency_relief("sort", "xeon")
        assert min(PAPER_FREQUENCIES_GHZ) <= relief <= max(
            PAPER_FREQUENCIES_GHZ)
