#!/usr/bin/env python3
"""System-parameter tuning: the paper's HDFS block-size study (§3.1.1).

Sweeps the HDFS block size (32–512 MB) and the core frequency
(1.2–1.8 GHz) for a compute-bound app (WordCount) and an I/O-bound app
(Sort) on both servers, then prints:

* the execution-time grid (Fig. 3's data),
* each configuration's distance from the best one — showing the paper's
  conclusion that tuning system parameters recovers a large fraction of
  the little core's performance gap without spending power on frequency.

Run:  python examples/block_size_tuning.py
"""

from repro.analysis.sweep import sweep
from repro.analysis.tables import format_table
from repro.core.characterization import Characterizer

BLOCKS = [32.0, 64.0, 128.0, 256.0, 512.0]
FREQS = [1.2, 1.4, 1.6, 1.8]


def main() -> None:
    ch = Characterizer()
    for workload in ("wordcount", "sort"):
        result = sweep(ch, machine=["atom", "xeon"], workload=[workload],
                       freq_ghz=FREQS, block_size_mb=BLOCKS)
        for machine in ("atom", "xeon"):
            rows = []
            best = min(
                result.get(machine=machine, workload=workload,
                           freq_ghz=f, block_size_mb=b).execution_time_s
                for f in FREQS for b in BLOCKS)
            for freq in FREQS:
                times = [result.get(machine=machine, workload=workload,
                                    freq_ghz=freq, block_size_mb=b
                                    ).execution_time_s for b in BLOCKS]
                rows.append([f"{freq} GHz"] + [round(t, 1) for t in times])
            print()
            print(format_table(
                ["frequency"] + [f"{b:g} MB" for b in BLOCKS], rows,
                title=f"{workload} on {machine}: execution time [s] "
                      f"(best {best:.1f} s)"))

        # The §3.1.1 punchline: a well-tuned low frequency beats a badly
        # tuned high frequency.
        tuned_low = result.get(machine="atom", workload=workload,
                               freq_ghz=1.2, block_size_mb=256.0)
        default_high = result.get(machine="atom", workload=workload,
                                  freq_ghz=1.8, block_size_mb=32.0)
        print(f"\n{workload}: Atom at 1.2 GHz with 256 MB blocks runs "
              f"{tuned_low.execution_time_s:.1f} s vs "
              f"{default_high.execution_time_s:.1f} s at 1.8 GHz with "
              f"32 MB blocks -> tuning the system parameter "
              f"{'beats' if tuned_low.execution_time_s < default_high.execution_time_s else 'rivals'} "
              f"a 50% frequency uplift.")


if __name__ == "__main__":
    main()
