#!/usr/bin/env python3
"""Phase-aware placement on a mixed big+little cluster (extension).

The paper's phase characterization shows the map and reduce phases can
prefer *different* cores (map → little for energy; memory-bound reduces
→ big).  This example runs jobs on a cluster containing both pools and
pins each phase to one machine type, comparing all four placements on
time, energy and EDP — the step the paper's §3.2.2 analysis motivates
("the choice of the core to run map or reduce phase").

Run:  python examples/phase_scheduling.py
"""

from repro.analysis.tables import format_table
from repro.core.phase_scheduler import (PHASE_PLACEMENTS,
                                        compare_phase_placements)


def main() -> None:
    for workload in ("wordcount", "naive_bayes", "terasort"):
        results = compare_phase_placements(workload, data_per_node_gb=2.0,
                                           block_size_mb=128)
        ranked = sorted(results.items(), key=lambda kv: kv[1].edp)
        rows = [[p, f"{r.execution_time_s:.1f}",
                 f"{r.dynamic_energy_j:.0f}", f"{r.edp:.3e}"]
                for p, r in ranked]
        print()
        print(format_table(
            ["map/reduce placement", "time [s]", "energy [J]", "EDP [J*s]"],
            rows, title=f"{workload} on 2 Xeon + 2 Atom nodes"))
        best = ranked[0]
        homogeneous = min(results["atom/atom"].edp,
                          results["xeon/xeon"].edp)
        if best[1].edp < homogeneous:
            gain = homogeneous / best[1].edp
            print(f"-> splitting the phases ({best[0]}) beats the best "
                  f"homogeneous placement by {gain:.2f}x on EDP")
        else:
            print(f"-> for this app a homogeneous placement remains "
                  f"optimal; the best split ({best[0]}) trails it by "
                  f"{best[1].edp / homogeneous:.2f}x")

    print("\nTakeaway: 'reduce on the big core' is worth it exactly for "
          "the apps whose reduce the paper found memory-bound (NB, TS), "
          "while little-core maps always cut energy — a scheduler can "
          "exploit both at once.")


if __name__ == "__main__":
    main()
