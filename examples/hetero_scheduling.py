#!/usr/bin/env python3
"""Heterogeneous scheduling case study (§3.5).

A cloud provider has pools of big (Xeon) and little (Atom) cores and
must place six Hadoop applications.  This example:

1. characterizes every (machine, core-count) configuration per app
   (Table 3's grid),
2. runs four policies — the paper's classify-then-place heuristic, an
   exhaustive oracle, performance-max (all big cores), and naive
   low-power (2 little cores),
3. reports each policy's placements, realized cost and regret for both
   an energy goal (EDP) and a real-time capital-cost goal (ED2AP).

Run:  python examples/hetero_scheduling.py
"""

from repro.analysis.tables import format_table
from repro.core.characterization import Characterizer
from repro.core.scheduler import evaluate_policies
from repro.workloads.base import MICRO_BENCHMARKS, REAL_WORLD


def main() -> None:
    ch = Characterizer()
    workloads = list(MICRO_BENCHMARKS + REAL_WORLD)

    for goal in ("EDP", "ED2AP"):
        print(f"\n=== goal: minimize {goal} ===")
        reports = evaluate_policies(workloads, goal=goal, characterizer=ch)

        placement_rows = []
        for report in reports:
            placement_rows.append(
                [report.policy] + [report.placements[w].label
                                   for w in workloads])
        print(format_table(["policy"] + workloads, placement_rows,
                           title="placements (cores + A=Atom / X=Xeon)"))

        summary = [[r.policy,
                    f"{r.total_cost:.3e}",
                    f"{r.mean_regret:.2f}x"]
                   for r in reports]
        print()
        print(format_table(["policy", f"total {goal}", "mean regret"],
                           summary))

        paper = next(r for r in reports if r.policy == "paper-heuristic")
        big = next(r for r in reports if r.policy == "big-first")
        print(f"\nThe paper's heuristic lands within "
              f"{paper.mean_regret:.2f}x of the oracle and improves on "
              f"performance-max scheduling by "
              f"{big.mean_regret / paper.mean_regret:.2f}x on {goal}.")


if __name__ == "__main__":
    main()
