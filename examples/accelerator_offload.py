#!/usr/bin/env python3
"""FPGA map-offload study (§3.4): does acceleration change big vs little?

For each application, the map phase is offloaded to an FPGA at
acceleration rates from 1x to 100x and the paper's Eq. (1) ratio is
computed:

    (t_Atom / t_Xeon) after acceleration
    ------------------------------------
    (t_Atom / t_Xeon) before acceleration

Ratios below 1 mean the accelerator shrinks the benefit of migrating to
the big core — i.e. once the hotspot runs on the FPGA, the little core
becomes the better host for the code that remains on the CPU.

Run:  python examples/accelerator_offload.py
"""

from repro.analysis.tables import format_table
from repro.core.acceleration import (AccelConfig, accelerated_time,
                                     sweep_acceleration)
from repro.core.characterization import Characterizer, RunKey
from repro.workloads.base import MICRO_BENCHMARKS, REAL_WORLD

RATES = (1, 5, 20, 50, 100)


def main() -> None:
    ch = Characterizer()
    rows = []
    for wl in MICRO_BENCHMARKS + REAL_WORLD:
        gb = 10.0 if wl in REAL_WORLD else 1.0
        atom = ch.run(RunKey("atom", wl, block_size_mb=512.0,
                             data_per_node_gb=gb))
        xeon = ch.run(RunKey("xeon", wl, block_size_mb=512.0,
                             data_per_node_gb=gb))
        points = dict(sweep_acceleration(atom, xeon, rates=RATES))
        rows.append([wl, f"{atom.phase_fraction('map'):.0%}"]
                    + [f"{points[r]:.3f}" for r in RATES])
    print(format_table(
        ["workload", "map share"] + [f"{r}x" for r in RATES], rows,
        title="Eq. (1) speedup ratio vs mapper acceleration "
              "(<1: accelerator favours the little core)"))

    # Concrete wall-clock view for one app.
    wl = "wordcount"
    atom = ch.run(RunKey("atom", wl, block_size_mb=512.0))
    xeon = ch.run(RunKey("xeon", wl, block_size_mb=512.0))
    config = AccelConfig(accel_rate=50.0)
    print(f"\n{wl} with a 50x FPGA mapper:")
    for name, result in (("atom", atom), ("xeon", xeon)):
        print(f"  {name}: {result.execution_time_s:7.1f} s -> "
              f"{accelerated_time(result, config):7.1f} s")
    before = atom.execution_time_s / xeon.execution_time_s
    after = (accelerated_time(atom, config)
             / accelerated_time(xeon, config))
    print(f"  Atom->Xeon migration gain: {before:.2f}x before, "
          f"{after:.2f}x after — the accelerator erodes the big core's "
          f"edge, so an energy-optimal provider keeps the residue on "
          f"the little core.")


if __name__ == "__main__":
    main()
