#!/usr/bin/env python3
"""Quickstart: run one Hadoop job on both servers and compare them.

This is the reproduction's 60-second tour: simulate WordCount over
1 GB/node on the 3-node Xeon (big core) and Atom (little core) clusters
at the paper's operating point, and print the quantities every figure in
the paper is built from — execution time, dynamic power, energy, the
EDP/ED2P cost metrics, and the per-phase breakdown.

Run:  python examples/quickstart.py
"""

from repro import simulate_job
from repro.core.metrics import ed2p, edp


def describe(result) -> None:
    print(f"\n{result.workload} on {result.machine} "
          f"({result.n_nodes} nodes @ {result.freq_ghz:.1f} GHz, "
          f"{result.block_size_mb:g} MB blocks)")
    print(f"  execution time : {result.execution_time_s:9.1f} s")
    print(f"  dynamic power  : {result.dynamic_power_w:9.1f} W")
    print(f"  dynamic energy : {result.dynamic_energy_j:9.0f} J")
    print(f"  EDP            : {edp(result.dynamic_energy_j, result.execution_time_s):9.3e} J*s")
    print(f"  ED2P           : {ed2p(result.dynamic_energy_j, result.execution_time_s):9.3e} J*s^2")
    print(f"  aggregate IPC  : {result.ipc:9.2f}")
    for phase in ("map", "reduce", "other"):
        print(f"    {phase:6s} phase : {result.phase_time(phase):8.1f} s "
              f"({100 * result.phase_fraction(phase):5.1f}%)")


def main() -> None:
    results = {}
    for machine in ("xeon", "atom"):
        results[machine] = simulate_job(
            machine, "wordcount",
            n_nodes=3, freq_ghz=1.8, block_size_mb=64,
            data_per_node_gb=1.0)
        describe(results[machine])

    xeon, atom = results["xeon"], results["atom"]
    t_ratio = atom.execution_time_s / xeon.execution_time_s
    e_ratio = (edp(atom.dynamic_energy_j, atom.execution_time_s)
               / edp(xeon.dynamic_energy_j, xeon.execution_time_s))
    print("\nBig vs little, in one line:")
    print(f"  the big core is {t_ratio:.2f}x faster, but the little core "
          f"delivers {1 / e_ratio:.2f}x better EDP —")
    print("  exactly the paper's headline trade-off for compute-bound "
          "Hadoop applications.")


if __name__ == "__main__":
    main()
