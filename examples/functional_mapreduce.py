#!/usr/bin/env python3
"""The functional layer: really executing the paper's six applications.

The performance simulator answers "how long / how much energy"; this
example shows the *what*: each Table 2 application's actual map/reduce
code running on generated data through the in-memory MapReduce runtime —
WordCount counts, Grep greps, TeraSort globally sorts, Naive Bayes
learns a classifier, and (Parallel) FP-Growth mines frequent itemsets.

Run:  python examples/functional_mapreduce.py
"""

from collections import Counter

from repro.mapreduce.functional import LocalRuntime, run_pipeline
from repro.workloads.datagen import (generate_labeled_documents,
                                     generate_records, generate_text_lines,
                                     generate_transactions)
from repro.workloads.fp_growth import fp_growth_mine, parallel_fp_growth
from repro.workloads.grep import grep_jobs
from repro.workloads.naive_bayes import train_naive_bayes
from repro.workloads.sort import sort_job
from repro.workloads.terasort import terasort_jobs
from repro.workloads.wordcount import wordcount_job


def main() -> None:
    runtime = LocalRuntime(num_mappers=4)

    # --- WordCount ------------------------------------------------------
    lines = generate_text_lines(400, seed=1)
    records = [(i, l) for i, l in enumerate(lines)]
    counts, stats = runtime.run(wordcount_job(), records)
    top = sorted(counts, key=lambda kv: -kv[1])[:5]
    print("WordCount  :", ", ".join(f"{w}={c}" for w, c in top))
    print(f"             combiner shrank {stats.map_output_records} map "
          f"records to {stats.shuffle_records} shuffled ones "
          f"({stats.spills} spills)")

    # --- Sort -----------------------------------------------------------
    table = generate_records(300, seed=2)
    ordered, _ = runtime.run(sort_job(num_reducers=1), table)
    keys = [k for k, _v in ordered]
    print(f"Sort       : {len(ordered)} records, globally ordered: "
          f"{keys == sorted(keys)}")

    # --- Grep (two chained jobs) -----------------------------------------
    matches, _ = run_pipeline(runtime, grep_jobs(pattern=r"[a-z]*ing"),
                              records)
    print(f"Grep       : {len(matches)} distinct matches; most frequent: "
          f"{matches[0] if matches else 'none'}")

    # --- TeraSort (sample, then range-partitioned sort) -------------------
    prepare, job = terasort_jobs(num_reducers=4)
    splits = prepare(table)
    sorted_out, _ = runtime.run(job, table)
    ts_keys = [k for k, _v in sorted_out]
    print(f"TeraSort   : {len(splits)} sampled split points, output "
          f"globally ordered: {ts_keys == sorted(ts_keys)}")

    # --- Naive Bayes ------------------------------------------------------
    docs = generate_labeled_documents(300, seed=3)
    train, test = docs[:240], docs[240:]
    model = train_naive_bayes(train)
    print(f"Naive Bayes: vocabulary {len(model.vocabulary)}, test accuracy "
          f"{model.accuracy(test):.0%}")

    # --- FP-Growth --------------------------------------------------------
    transactions = generate_transactions(
        400, planted_itemsets=[("item000", "item001", "item002")],
        planted_probability=0.55, seed=4)
    min_support = 120
    itemsets = fp_growth_mine(transactions, min_support)
    pfp = parallel_fp_growth(transactions, min_support, num_groups=4)
    planted = frozenset(("item000", "item001", "item002"))
    print(f"FP-Growth  : {len(itemsets)} frequent itemsets at "
          f"support>={min_support}; planted triple found: "
          f"{planted in itemsets}; parallel == single-machine: "
          f"{pfp == itemsets}")


if __name__ == "__main__":
    main()
