#!/usr/bin/env python3
"""Docs lint shim: broken intra-repo markdown links.

The actual check now lives in the lint framework as rule **DOC001**
(``repro.lint.rules.docs``), so ``repro-hadoop lint`` is the single
lint entry point.  This script remains for muscle memory and for
callers of its old API: ``broken_links(root)`` / ``markdown_files(root)``
keep working, now delegating to the framework.

Usage::

    python tools/check_links.py [repo-root]

Exit status 0 when all links resolve, 1 otherwise (one line per broken
link on stderr).  Equivalent to ``repro-hadoop lint docs *.md`` —
prefer the CLI, which also applies the committed baseline.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import List

_REPO_ROOT = Path(__file__).resolve().parent.parent
if str(_REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.lint import get_rule  # noqa: E402
from repro.lint.engine import _iter_markdown_files  # noqa: E402
from repro.lint.registry import FileContext  # noqa: E402


def markdown_files(root: Path) -> List[Path]:
    return _iter_markdown_files(Path(root), None)


def broken_links(root: Path) -> List[str]:
    """Old-API adapter: one ``path:line: broken link -> target`` string
    per DOC001 finding under *root*."""
    root = Path(root)
    rule = get_rule("DOC001")
    errors = []
    for md in markdown_files(root):
        relpath = md.resolve().relative_to(root.resolve()).as_posix()
        ctx = FileContext(relpath, md.read_text(encoding="utf-8"), root=root)
        for finding in rule.check(ctx):
            errors.append(f"{finding.path}:{finding.line}: "
                          f"{finding.message}")
    return errors


def main(argv: List[str]) -> int:
    root = Path(argv[1]).resolve() if len(argv) > 1 else _REPO_ROOT
    errors = broken_links(root)
    for error in errors:
        print(error, file=sys.stderr)
    if errors:
        print(f"{len(errors)} broken link(s)", file=sys.stderr)
        return 1
    checked = len(markdown_files(root))
    print(f"docs-lint: {checked} markdown files, all intra-repo links ok "
          f"(via repro.lint DOC001)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
