#!/usr/bin/env python3
"""Docs lint: fail on broken intra-repo markdown links.

Scans every ``*.md`` at the repo root and under ``docs/`` for inline
markdown links ``[text](target)`` and reports targets that are neither
external (``http(s)://``, ``mailto:``) nor existing files/directories
relative to the linking file.  Fragment-only links (``#section``) are
skipped; ``path#fragment`` links are checked for the path part.

Usage::

    python tools/check_links.py [repo-root]

Exit status 0 when all links resolve, 1 otherwise (one line per broken
link on stderr).  Run by CI (.github/workflows/ci.yml) and by
``tests/test_docs.py``.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import List

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
EXTERNAL = ("http://", "https://", "mailto:")

#: Quoted upstream material (paper abstracts, snippets from other
#: repositories) whose relative links point into *their* source trees,
#: plus generated output — not authored docs, so not linted.
EXCLUDE = {"PAPERS.md", "SNIPPETS.md", "ISSUE.md", "reproduction_report.md"}


def markdown_files(root: Path) -> List[Path]:
    files = sorted(p for p in root.glob("*.md") if p.name not in EXCLUDE)
    docs = root / "docs"
    if docs.is_dir():
        files += sorted(docs.glob("*.md"))
    return files


def broken_links(root: Path) -> List[str]:
    errors = []
    for md in markdown_files(root):
        text = md.read_text(encoding="utf-8")
        for match in LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(EXTERNAL) or target.startswith("#"):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            if not (md.parent / path).exists():
                line = text[:match.start()].count("\n") + 1
                errors.append(f"{md.relative_to(root)}:{line}: "
                              f"broken link -> {target}")
    return errors


def main(argv: List[str]) -> int:
    root = Path(argv[1]).resolve() if len(argv) > 1 else (
        Path(__file__).resolve().parent.parent)
    errors = broken_links(root)
    for error in errors:
        print(error, file=sys.stderr)
    if errors:
        print(f"{len(errors)} broken link(s)", file=sys.stderr)
        return 1
    checked = len(markdown_files(root))
    print(f"docs-lint: {checked} markdown files, all intra-repo links ok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
